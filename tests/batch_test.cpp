// Batch-pipeline tests: TupleBatch container semantics, queue/fjord batch
// ops, and the load-bearing property of the whole PR — batched ingestion is
// RESULT-EQUIVALENT to per-tuple ingestion on every path (classic eddy,
// CACQ shared eddy, PSoup, the server's continuous and windowed queries),
// differing only in result ordering for joins.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "cacq/shared_eddy.h"
#include "common/rng.h"
#include "eddy/eddy.h"
#include "exec/executor.h"
#include "fjords/fjord.h"
#include "operators/grouped_filter.h"
#include "operators/predicate.h"
#include "operators/selection.h"
#include "psoup/psoup.h"
#include "reference/reference.h"
#include "server/telegraphcq.h"
#include "tuple/column_store.h"
#include "tuple/tuple_batch.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;
using testref::NaiveFilter;
using testref::NaiveJoin;

SchemaRef Sch(SourceId source) {
  // One shared schema object per source: tuples of a real stream share their
  // schema pointer, and ColumnStore::FromRows columnarizes only such batches.
  static std::map<SourceId, SchemaRef> cache;
  SchemaRef& s = cache[source];
  if (s == nullptr) {
    s = Schema::Make({
        {"k", ValueType::kInt64, source},
        {"v", ValueType::kInt64, source},
    });
  }
  return s;
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

std::vector<Tuple> RandomStream(SourceId source, size_t n, int64_t key_range,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Row(source, rng.UniformInt(0, key_range - 1),
                      rng.UniformInt(0, 99), static_cast<Timestamp>(i)));
  }
  return out;
}

/// Cuts `stream` into batches of `batch_size` tagged with `source`.
std::vector<TupleBatch> Batched(const std::vector<Tuple>& stream,
                                SourceId source, size_t batch_size) {
  std::vector<TupleBatch> out;
  TupleBatch batch;
  batch.set_source(source);
  for (const Tuple& t : stream) {
    batch.push_back(t);
    if (batch.size() >= batch_size) {
      out.push_back(std::move(batch));
      batch = TupleBatch();
      batch.set_source(source);
    }
  }
  if (!batch.empty()) out.push_back(std::move(batch));
  return out;
}

// ---------------------------------------------------------------------------
// TupleBatch container semantics.

TEST(TupleBatchTest, PushBackKeepsContiguityAndOrder) {
  TupleBatch batch;
  batch.set_source(3);
  for (int i = 0; i < 20; ++i) {
    batch.push_back(Row(3, i, i * 10, i));
  }
  ASSERT_EQ(batch.size(), 20u);
  EXPECT_EQ(batch.source(), 3u);
  // data() is one contiguous run of rows.
  const Tuple* base = batch.data();
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(&batch[i], base + i);
    EXPECT_EQ(batch[i].Get("k").AsInt64(), static_cast<int64_t>(i));
  }
  size_t seen = 0;
  for (const Tuple& t : batch) {
    EXPECT_EQ(t.Get("v").AsInt64(), static_cast<int64_t>(seen) * 10);
    ++seen;
  }
  EXPECT_EQ(seen, 20u);
}

TEST(TupleBatchTest, DropFrontOnInlineAndHeapBatches) {
  for (size_t n : {size_t{6}, size_t{20}}) {  // below and above inline cap
    TupleBatch batch;
    for (size_t i = 0; i < n; ++i) batch.push_back(Row(0, i, 0, i));
    batch.DropFront(4);
    ASSERT_EQ(batch.size(), n - 4);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].Get("k").AsInt64(), static_cast<int64_t>(i + 4));
    }
    batch.DropFront(batch.size());
    EXPECT_TRUE(batch.empty());
  }
}

TEST(TupleBatchTest, CopyAndMovePreserveContentsAndSource) {
  TupleBatch a;
  a.set_source(7);
  for (int i = 0; i < 12; ++i) a.push_back(Row(7, i, i, i));

  TupleBatch copied = a;
  ASSERT_EQ(copied.size(), 12u);
  EXPECT_EQ(copied.source(), 7u);
  EXPECT_EQ(copied[11].Get("k").AsInt64(), 11);

  TupleBatch moved = std::move(a);
  ASSERT_EQ(moved.size(), 12u);
  EXPECT_EQ(moved.source(), 7u);

  copied.clear();
  EXPECT_TRUE(copied.empty());
  EXPECT_EQ(copied.source(), 7u);  // clear() keeps the stream tag
}

// ---------------------------------------------------------------------------
// Queue and fjord batch operations.

TEST(QueueBatchTest, TryPushBatchFillsToCapacityAndReportsWouldBlock) {
  BoundedQueue<int> q(4);
  int items[6] = {1, 2, 3, 4, 5, 6};
  QueueOp op;
  EXPECT_EQ(q.TryPushBatch(items, 6, &op), 4u);
  EXPECT_EQ(op, QueueOp::kWouldBlock);
  int got;
  for (int want = 1; want <= 4; ++want) {
    ASSERT_EQ(q.TryDequeue(&got), QueueOp::kOk);
    EXPECT_EQ(got, want);
  }
}

TEST(QueueBatchTest, TryPushBatchOnClosedQueueLeavesItemsWithCaller) {
  BoundedQueue<int> q(4);
  q.Close();
  int items[3] = {7, 8, 9};
  QueueOp op;
  EXPECT_EQ(q.TryPushBatch(items, 3, &op), 0u);
  EXPECT_EQ(op, QueueOp::kClosed);
  EXPECT_EQ(items[0], 7);  // untouched, caller still owns them
}

TEST(QueueBatchTest, BlockingBatchRoundTripAcrossThreads) {
  BoundedQueue<int> q(8);
  constexpr int kTotal = 1000;
  std::thread producer([&q] {
    std::vector<int> chunk;
    for (int i = 0; i < kTotal; i += 50) {
      chunk.clear();
      for (int j = i; j < i + 50; ++j) chunk.push_back(j);
      EXPECT_EQ(q.PushBatchBlocking(chunk.data(), chunk.size()), 50u);
    }
    q.Close();
  });
  std::vector<int> got;
  std::vector<int> chunk;
  while (true) {
    chunk.clear();
    if (q.PopBatchBlocking(&chunk, 64) == 0) break;
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(got[i], i);  // FIFO preserved
}

TEST(QueueBatchTest, TryPopBatchDrainsThenReportsClosed) {
  BoundedQueue<int> q(8);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  ASSERT_EQ(q.TryEnqueue(2), QueueOp::kOk);
  q.Close();
  std::vector<int> out;
  QueueOp op;
  EXPECT_EQ(q.TryPopBatch(&out, 10, &op), 2u);
  EXPECT_EQ(op, QueueOp::kOk);
  EXPECT_EQ(q.TryPopBatch(&out, 10, &op), 0u);
  EXPECT_EQ(op, QueueOp::kClosed);
}

TEST(FjordBatchTest, PushModeProduceBatchDropsDeliveredPrefix) {
  auto endpoints = Fjord::Make(FjordMode::kPush, /*capacity=*/4, "t");
  FjordProducer producer(endpoints.producer);
  TupleBatch batch;
  batch.set_source(0);
  for (int i = 0; i < 6; ++i) batch.push_back(Row(0, i, 0, i));

  // Capacity 4: the first produce moves 4 and keeps the suffix in hand.
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kWouldBlock);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].Get("k").AsInt64(), 4);

  TupleBatch out;
  QueueOp op;
  EXPECT_EQ(endpoints.consumer.ConsumeBatch(&out, 64, &op), 4u);
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kOk);
  EXPECT_TRUE(batch.empty());
  producer.Close();
  out.clear();
  EXPECT_EQ(endpoints.consumer.ConsumeBatch(&out, 64, &op), 2u);
  EXPECT_EQ(out[0].Get("k").AsInt64(), 4);
  out.clear();
  EXPECT_EQ(endpoints.consumer.ConsumeBatch(&out, 64, &op), 0u);
  EXPECT_EQ(op, QueueOp::kClosed);
}

// ---------------------------------------------------------------------------
// Result equivalence: batched vs per-tuple ingestion.

TEST(BatchEquivalenceTest, ClassicEddyJoinMatchesPerTuple) {
  auto s = RandomStream(0, 200, 15, 11);
  auto t = RandomStream(1, 200, 15, 12);

  auto run = [&](bool batched) {
    auto stem_s = std::make_shared<SteM>("stemS", 0, Sch(0),
                                         StemOptions{.key_attr = "k"});
    auto stem_t = std::make_shared<SteM>("stemT", 1, Sch(1),
                                         StemOptions{.key_attr = "k"});
    Eddy eddy(MakeLotteryPolicy(5));
    eddy.AttachSteM(stem_s);
    eddy.AttachSteM(stem_t);
    eddy.AddModule(std::make_unique<SteMProbe>(
        "probeS", stem_s.get(),
        JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
    eddy.AddModule(std::make_unique<SteMProbe>(
        "probeT", stem_t.get(),
        JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
    std::vector<Tuple> results;
    eddy.SetOutput([&](const Tuple& t) { results.push_back(t); });
    if (batched) {
      for (const TupleBatch& b : Batched(s, 0, 23)) eddy.IngestBatch(b);
      for (const TupleBatch& b : Batched(t, 1, 23)) eddy.IngestBatch(b);
    } else {
      for (const Tuple& tu : s) eddy.Ingest(0, tu);
      for (const Tuple& tu : t) eddy.Ingest(1, tu);
    }
    return results;
  };

  EXPECT_EQ(CanonicalMultiset(run(false)), CanonicalMultiset(run(true)));
  auto expected =
      NaiveJoin({s, t}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"})});
  EXPECT_EQ(CanonicalMultiset(run(true)), CanonicalMultiset(expected));
}

TEST(BatchEquivalenceTest, SharedEddyMixedQueriesMatchPerTuple) {
  auto s = RandomStream(0, 250, 12, 21);
  auto t = RandomStream(1, 250, 12, 22);

  // One filter query, one join+filter, one join+residual — the three CACQ
  // module types, all live at once.
  auto run = [&](bool batched, uint64_t* reused) {
    SharedEddy eddy(MakeLotteryPolicy(9));
    eddy.RegisterStream(0, Sch(0));
    eddy.RegisterStream(1, Sch(1));
    std::map<QueryId, std::vector<Tuple>> results;
    eddy.SetOutput(
        [&](QueryId q, const Tuple& t) { results[q].push_back(t); });

    CQSpec filter_only;
    filter_only.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(6)});
    CQSpec join_filter;
    join_filter.joins.push_back({{0, "k"}, {1, "k"}});
    join_filter.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(40)});
    CQSpec join_residual;
    join_residual.joins.push_back({{0, "k"}, {1, "k"}});
    join_residual.residuals.push_back(
        MakeCompareAttrs({1, "v"}, CmpOp::kGt, {0, "v"}));
    EXPECT_TRUE(eddy.AddQuery(filter_only).ok());
    EXPECT_TRUE(eddy.AddQuery(join_filter).ok());
    EXPECT_TRUE(eddy.AddQuery(join_residual).ok());

    if (batched) {
      // Interleave stream batches the way the dispatch loop would.
      auto sb = Batched(s, 0, 17);
      auto tb = Batched(t, 1, 17);
      for (size_t i = 0; i < sb.size() || i < tb.size(); ++i) {
        if (i < sb.size()) eddy.IngestBatch(sb[i]);
        if (i < tb.size()) eddy.IngestBatch(tb[i]);
      }
    } else {
      for (size_t i = 0; i < s.size(); ++i) {
        eddy.Ingest(0, s[i]);
        eddy.Ingest(1, t[i]);
      }
    }
    if (reused != nullptr) *reused = eddy.routing_decisions_reused();
    return results;
  };

  uint64_t reused_batched = 0;
  auto per_tuple = run(false, nullptr);
  auto batched = run(true, &reused_batched);
  ASSERT_EQ(per_tuple.size(), batched.size());
  for (auto& [q, tuples] : per_tuple) {
    EXPECT_EQ(CanonicalMultiset(tuples), CanonicalMultiset(batched[q]))
        << "query " << q;
  }
  // The whole point of batch routing: identical-lineage runs reuse one
  // decision instead of re-ranking per envelope.
  EXPECT_GT(reused_batched, 0u);
}

TEST(BatchEquivalenceTest, PSoupInvokeMatchesPerTuple) {
  auto stream = RandomStream(0, 400, 20, 31);

  auto run = [&](bool batched) {
    PSoup psoup;
    psoup.RegisterStream(0, Sch(0), /*retention=*/1000);
    PSoupQuery q;
    q.where.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(8)});
    q.window = 100;
    auto id = psoup.Register(q);
    EXPECT_TRUE(id.ok());
    if (batched) {
      for (const TupleBatch& b : Batched(stream, 0, 29)) {
        psoup.IngestBatch(b);
      }
    } else {
      for (const Tuple& t : stream) psoup.Ingest(0, t);
    }
    auto answer = psoup.Invoke(*id, /*now=*/399);
    EXPECT_TRUE(answer.ok());
    return *answer;
  };

  auto per_tuple = run(false);
  auto batched = run(true);
  EXPECT_FALSE(per_tuple.empty());
  EXPECT_EQ(CanonicalMultiset(per_tuple), CanonicalMultiset(batched));
}

// ---------------------------------------------------------------------------
// Server-level equivalence and error paths.

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

TelegraphCQ::TupleBatchRow StockRow(Timestamp day, const char* symbol,
                                    double price) {
  return {{Value::TimestampVal(day), Value::String(symbol),
           Value::Double(price)},
          day};
}

size_t DrainCount(PushEgress* egress, size_t expected, int patience_ms) {
  size_t got = 0;
  Delivery d;
  for (int waited = 0; waited < patience_ms; ++waited) {
    while (egress->Poll(&d)) ++got;
    if (got >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return got;
}

TEST(ServerBatchTest, PushBatchMatchesPerTuplePushOnContinuousQuery) {
  auto run = [](bool batched) {
    TelegraphCQ server;
    EXPECT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
    auto handle = server.Submit(
        "SELECT closingPrice, timestamp FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT' AND closingPrice > 45.0");
    EXPECT_TRUE(handle.ok()) << handle.status();
    server.Start();
    if (batched) {
      std::vector<TelegraphCQ::TupleBatchRow> rows;
      for (Timestamp d = 1; d <= 30; ++d) {
        rows.push_back(StockRow(d, "MSFT", 50.0));
        rows.push_back(StockRow(d, "AAPL", d % 2 == 0 ? 60.0 : 40.0));
      }
      EXPECT_TRUE(
          server.PushBatch("ClosingStockPrices", std::move(rows)).ok());
    } else {
      for (Timestamp d = 1; d <= 30; ++d) {
        EXPECT_TRUE(server
                        .Push("ClosingStockPrices",
                              {Value::TimestampVal(d), Value::String("MSFT"),
                               Value::Double(50.0)},
                              d)
                        .ok());
        EXPECT_TRUE(server
                        .Push("ClosingStockPrices",
                              {Value::TimestampVal(d), Value::String("AAPL"),
                               Value::Double(d % 2 == 0 ? 60.0 : 40.0)},
                              d)
                        .ok());
      }
    }
    size_t got = DrainCount(handle->results.get(), 30, 2000);
    server.Stop();
    return got;
  };
  size_t per_tuple = run(false);
  size_t batched = run(true);
  EXPECT_EQ(per_tuple, 30u);
  EXPECT_EQ(batched, per_tuple);
}

TEST(ServerBatchTest, PushBatchFeedsWindowedQuery) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();

  std::vector<TelegraphCQ::TupleBatchRow> rows;
  for (Timestamp d = 1; d <= 10; ++d) rows.push_back(StockRow(d, "MSFT", 50.0));
  ASSERT_TRUE(server.PushBatch("ClosingStockPrices", std::move(rows)).ok());

  WindowResult wr;
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    fired = handle->windows->Poll(&wr);
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(fired);
  EXPECT_EQ(wr.tuples.size(), 5u);
}

TEST(ServerBatchTest, PushBatchValidationIsAtomic) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok());
  server.Start();

  // Row 1 of 3 is malformed (arity): NO row may enter the engine.
  std::vector<TelegraphCQ::TupleBatchRow> rows;
  rows.push_back(StockRow(1, "MSFT", 50.0));
  rows.push_back({{Value::TimestampVal(2)}, 2});
  rows.push_back(StockRow(3, "MSFT", 52.0));
  Status s = server.PushBatch("ClosingStockPrices", std::move(rows));
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
  EXPECT_NE(s.message().find("row 1"), std::string::npos) << s;

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(server.tuples_ingested(), 0u);
  Delivery d;
  EXPECT_FALSE(handle->results->Poll(&d));
  server.Stop();
}

TEST(ServerBatchTest, CloseStreamMidBatchSequenceIsOrderly) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();

  // First half of the data arrives, then the stream closes with the window
  // still open — the windowed query must fire off the tuples it has.
  std::vector<TelegraphCQ::TupleBatchRow> first;
  for (Timestamp d = 1; d <= 4; ++d) first.push_back(StockRow(d, "MSFT", 50.0));
  ASSERT_TRUE(server.PushBatch("ClosingStockPrices", std::move(first)).ok());
  ASSERT_TRUE(server.CloseStream("ClosingStockPrices").ok());
  EXPECT_TRUE(server.CloseStream("ClosingStockPrices").ok());  // idempotent

  // Batches after close are rejected whole — none of their rows leak in.
  std::vector<TelegraphCQ::TupleBatchRow> late;
  for (Timestamp d = 5; d <= 8; ++d) late.push_back(StockRow(d, "MSFT", 50.0));
  Status s = server.PushBatch("ClosingStockPrices", std::move(late));
  EXPECT_TRUE(s.code() == StatusCode::kFailedPrecondition) << s;
  EXPECT_TRUE(server.CloseStream("Nope").IsNotFound());

  WindowResult wr;
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    fired = handle->windows->Poll(&wr);
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(fired);
  EXPECT_EQ(wr.tuples.size(), 4u);  // days 1..4 only; late batch kept out
  EXPECT_EQ(server.tuples_ingested(), 4u);
}

TEST(ServerBatchTest, CancelErrorsAndWindowedCancel) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto windowed = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(windowed.ok()) << windowed.status();
  server.Start();

  EXPECT_TRUE(server.Cancel(9999).IsNotFound());
  ASSERT_TRUE(server.Cancel(windowed->id).ok());
  EXPECT_TRUE(windowed->windows->Finished());
  EXPECT_TRUE(server.Cancel(windowed->id).IsNotFound());  // double-cancel

  // The stream outlives the cancelled query; pushes still succeed and are
  // simply unrouted past the detached subscription.
  std::vector<TelegraphCQ::TupleBatchRow> rows;
  rows.push_back(StockRow(1, "MSFT", 50.0));
  EXPECT_TRUE(server.PushBatch("ClosingStockPrices", std::move(rows)).ok());
  server.Stop();
}

TEST(ExecutorBatchTest, UnroutedBatchIsCountedPerStreamAndSurfaced) {
  Executor exec;
  SchemaRef schema = Sch(0);
  ASSERT_TRUE(exec.RegisterStream(0, schema).ok());
  exec.Start();

  TupleBatch batch;
  batch.set_source(0);
  for (int i = 0; i < 5; ++i) batch.push_back(Row(0, i, i, i));
  Status s = exec.IngestBatch(std::move(batch));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  EXPECT_EQ(exec.tuples_dropped_unrouted(), 5u);
  EXPECT_EQ(exec.stream_tuples_dropped(0), 5u);
  EXPECT_EQ(exec.stream_tuples_dropped(42), 0u);  // unknown stream: zero

  TupleBatch unknown;
  unknown.set_source(42);
  unknown.push_back(Row(0, 1, 1, 1));
  EXPECT_TRUE(exec.IngestBatch(std::move(unknown)).IsNotFound());
  exec.Stop();
}

TEST(ServerBatchTest, IntrospectReportsPerStreamStats) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok());
  server.Start();
  std::vector<TelegraphCQ::TupleBatchRow> rows;
  for (Timestamp d = 1; d <= 8; ++d) rows.push_back(StockRow(d, "MSFT", 50.0));
  ASSERT_TRUE(server.PushBatch("ClosingStockPrices", std::move(rows)).ok());
  ASSERT_EQ(DrainCount(handle->results.get(), 8, 2000), 8u);
  server.Stop();

  TelegraphCQ::Introspection view = server.Introspect();
  ASSERT_EQ(view.streams.size(), 1u);
  EXPECT_EQ(view.streams[0].name, "ClosingStockPrices");
  EXPECT_EQ(view.streams[0].tuples_in, 8u);
  EXPECT_EQ(view.streams[0].dropped, 0u);
  // The per-stream drop counter exists in the registry even when zero.
  EXPECT_EQ(view.metrics.CounterFamilySum("tcq_executor_stream_dropped_total"),
            0u);
}

// ---------------------------------------------------------------------------
// Columnar representation (DESIGN.md §11): row<->column round trips must be
// value- AND type-exact, selection filtering must pin the exact row multiset,
// and every kernel dispatch (grouped filter, eddy prefilter) must agree with
// the scalar path it replaces.

SchemaRef MixedSchema(SourceId source) {
  return Schema::Make({
      {"i", ValueType::kInt64, source},
      {"d", ValueType::kDouble, source},
      {"s", ValueType::kString, source},
      {"b", ValueType::kBool, source},
  });
}

std::vector<Tuple> RandomMixedStream(SourceId source, size_t n, uint64_t seed,
                                     double null_rate) {
  Rng rng(seed);
  SchemaRef schema = MixedSchema(source);
  std::vector<Tuple> out;
  for (size_t i = 0; i < n; ++i) {
    auto nullable = [&](Value v) {
      return rng.Bernoulli(null_rate) ? Value::Null() : v;
    };
    out.push_back(Tuple::Make(
        schema,
        {nullable(Value::Int64(rng.UniformInt(-1000, 1000))),
         nullable(Value::Double(rng.UniformDouble(-5.0, 5.0))),
         nullable(Value::String("s" + std::to_string(rng.UniformInt(0, 9)))),
         nullable(Value::Bool(rng.Bernoulli(0.5)))},
        static_cast<Timestamp>(i)));
  }
  return out;
}

TEST(ColumnarBatchTest, RowColumnRoundTripIsValueAndTypeExact) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    auto stream = RandomMixedStream(0, 120, seed, seed == 103u ? 0.25 : 0.0);
    TupleBatch batch(0);
    for (const Tuple& t : stream) batch.push_back(t);

    const ColumnStore::Ref& cols = batch.columns();
    ASSERT_NE(cols, nullptr);
    ASSERT_EQ(cols->num_rows(), stream.size());
    for (size_t r = 0; r < stream.size(); ++r) {
      Tuple round = cols->MaterializeRow(r);
      ASSERT_EQ(round.num_fields(), stream[r].num_fields());
      EXPECT_EQ(round.timestamp(), stream[r].timestamp());
      for (size_t c = 0; c < stream[r].num_fields(); ++c) {
        // Type-exact, not just Compare-equal: a lane that silently promoted
        // int64 to double would still Compare equal but break downstream
        // type dispatch.
        EXPECT_EQ(round.at(c).type(), stream[r].at(c).type())
            << "seed " << seed << " row " << r << " col " << c;
        EXPECT_EQ(round.at(c), stream[r].at(c))
            << "seed " << seed << " row " << r << " col " << c;
      }
    }
  }
}

TEST(ColumnarBatchTest, ColumnarConstructedBatchReadsBackBuilderInput) {
  ColumnStoreBuilder builder(Sch(0));
  for (int64_t i = 0; i < 10; ++i) {
    builder.AppendTimestamp(i);
    ASSERT_TRUE(builder.Append(0, Value::Int64(i)));
    ASSERT_TRUE(builder.Append(1, Value::Int64(i * 7)));
  }
  ColumnStore::Ref cols = builder.Finish();
  ASSERT_NE(cols, nullptr);

  TupleBatch batch(0, cols);
  ASSERT_EQ(batch.size(), 10u);
  EXPECT_FALSE(batch.empty());
  // Column-backed read paths never materialize copies of the store.
  EXPECT_EQ(batch.columns().get(), cols.get());
  TupleBatch copy = batch;
  EXPECT_EQ(copy.columns().get(), cols.get());  // copies share the store
  for (size_t r = 0; r < batch.size(); ++r) {
    Tuple t = batch.RowAt(r);
    EXPECT_EQ(t.Get("k").AsInt64(), static_cast<int64_t>(r));
    EXPECT_EQ(t.Get("v").AsInt64(), static_cast<int64_t>(r) * 7);
    EXPECT_EQ(t.timestamp(), static_cast<Timestamp>(r));
  }
}

TEST(ColumnarBatchTest, FilterSelectsExactRowMultisetOnBothBackings) {
  auto stream = RandomMixedStream(0, 200, 42, 0.1);
  TupleBatch row_backed(0);
  for (const Tuple& t : stream) row_backed.push_back(t);
  TupleBatch col_backed(0, row_backed.columns());
  ASSERT_NE(col_backed.columns(), nullptr);

  Rng rng(43);
  SelectionVector sel(stream.size(), false);
  std::vector<Tuple> expected;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (rng.Bernoulli(0.4)) {
      sel.Set(i);
      expected.push_back(stream[i]);
    }
  }
  for (const TupleBatch* src : {&row_backed, &col_backed}) {
    TupleBatch kept = src->Filter(sel);
    EXPECT_EQ(kept.source(), src->source());
    ASSERT_EQ(kept.size(), expected.size());
    std::vector<Tuple> got(kept.begin(), kept.end());
    EXPECT_EQ(CanonicalMultiset(got), CanonicalMultiset(expected));
  }

  SelectionVector none(stream.size(), false);
  TupleBatch empty = row_backed.Filter(none);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.source(), row_backed.source());
}

TEST(ColumnarBatchTest, MutationDropsAndRebuildsColumnCache) {
  TupleBatch batch(0);
  batch.push_back(Row(0, 1, 10, 1));
  const ColumnStore::Ref before = batch.columns();
  ASSERT_NE(before, nullptr);
  batch.push_back(Row(0, 2, 20, 2));
  const ColumnStore::Ref& after = batch.columns();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());  // cache was invalidated, not stale
  EXPECT_EQ(after->num_rows(), 2u);
  EXPECT_EQ(after->ValueAt(0, 1).AsInt64(), 2);

  TupleBatch empty(0);
  EXPECT_EQ(empty.columns(), nullptr);  // no columnar form for zero rows
}

// ---------------------------------------------------------------------------
// GroupedFilter::MatchBatch vs per-row Match: the columnar count-sweep
// kernels (and every guard that routes around them) must reproduce the
// scalar QuerySet exactly.

TEST(GroupedFilterBatchTest, MatchBatchAgreesWithMatchOnRandomFactors) {
  Rng rng(71);
  GroupedFilter gf({0, "x"});
  QueryId q = 0;
  const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                        CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (int i = 0; i < 40; ++i) {
    CmpOp op = kOps[rng.UniformInt(0, 5)];
    Value lit = rng.Bernoulli(0.5)
                    ? Value::Int64(rng.UniformInt(-100, 100))
                    : Value::Double(rng.UniformDouble(-100.0, 100.0));
    gf.AddFactor(q++, op, std::move(lit));
  }
  for (int i = 0; i < 15; ++i) {
    int64_t lo = rng.UniformInt(-100, 50);
    Value lo_v = rng.Bernoulli(0.5) ? Value::Int64(lo)
                                    : Value::Double(static_cast<double>(lo));
    Value hi_v = rng.Bernoulli(0.5)
                     ? Value::Int64(lo + rng.UniformInt(0, 100))
                     : Value::Double(lo + rng.UniformDouble(0.0, 100.0));
    gf.AddRange(q++, std::move(lo_v), rng.Bernoulli(0.5), std::move(hi_v),
                rng.Bernoulli(0.5));
  }
  // Guard-tripping factors: a double literal past 2^53 (exact-int compare
  // diverges from double rounding) and a NaN literal (Value::Compare says
  // NaN == everything). Both must force the scalar path, not wrong answers.
  gf.AddFactor(q++, CmpOp::kGt, Value::Double(9007199254740993.0));
  gf.AddFactor(q++, CmpOp::kEq, Value::Double(std::nan("")));

  auto check_lane = [&](const char* what, const Column& col, size_t n) {
    std::vector<QuerySet> batch_out(n);
    gf.MatchBatch(col, n, batch_out.data());
    for (size_t r = 0; r < n; ++r) {
      QuerySet expect;
      gf.Match(col.ValueAt(r), &expect);
      EXPECT_EQ(batch_out[r], expect) << what << " row " << r;
    }
  };

  SchemaRef int_sch = Schema::Make({{"x", ValueType::kInt64, 0}});
  ColumnStoreBuilder ib(int_sch);
  for (int i = 0; i < 300; ++i) {
    ib.AppendTimestamp(i);
    ASSERT_TRUE(ib.Append(0, Value::Int64(rng.UniformInt(-120, 120))));
  }
  ColumnStore::Ref int_cols = ib.Finish();
  ASSERT_NE(int_cols, nullptr);
  check_lane("int64 lane", int_cols->column(0), int_cols->num_rows());

  SchemaRef dbl_sch = Schema::Make({{"x", ValueType::kDouble, 0}});
  ColumnStoreBuilder db(dbl_sch);
  for (int i = 0; i < 300; ++i) {
    db.AppendTimestamp(i);
    ASSERT_TRUE(db.Append(0, Value::Double(rng.UniformDouble(-120.0, 120.0))));
  }
  ColumnStore::Ref dbl_cols = db.Finish();
  ASSERT_NE(dbl_cols, nullptr);
  check_lane("double lane", dbl_cols->column(0), dbl_cols->num_rows());
}

TEST(GroupedFilterBatchTest, MatchBatchFallsBackOnNullAndNaNLanes) {
  GroupedFilter gf({0, "x"});
  gf.AddFactor(0, CmpOp::kGe, Value::Int64(10));
  gf.AddFactor(1, CmpOp::kLt, Value::Double(25.5));
  gf.AddRange(2, Value::Int64(5), true, Value::Int64(40), false);

  // A lane containing NaN data: Value::Compare reports NaN equal to
  // everything, which IEEE kernels cannot reproduce — dispatch must take the
  // scalar path and still agree with per-row Match.
  SchemaRef dbl_sch = Schema::Make({{"x", ValueType::kDouble, 0}});
  ColumnStoreBuilder db(dbl_sch);
  Rng rng(77);
  for (int i = 0; i < 64; ++i) {
    db.AppendTimestamp(i);
    Value v = i == 17 ? Value::Double(std::nan(""))
                      : Value::Double(rng.UniformDouble(0.0, 50.0));
    ASSERT_TRUE(db.Append(0, std::move(v)));
  }
  ColumnStore::Ref nan_cols = db.Finish();
  ASSERT_NE(nan_cols, nullptr);
  ASSERT_FALSE(nan_cols->column(0).has_nulls());

  // A lane containing nulls: kernels have no null story, scalar fallback.
  SchemaRef int_sch = Schema::Make({{"x", ValueType::kInt64, 0}});
  ColumnStoreBuilder ib(int_sch);
  for (int i = 0; i < 64; ++i) {
    ib.AppendTimestamp(i);
    Value v = i % 9 == 0 ? Value::Null()
                         : Value::Int64(rng.UniformInt(0, 50));
    ASSERT_TRUE(ib.Append(0, std::move(v)));
  }
  ColumnStore::Ref null_cols = ib.Finish();
  ASSERT_NE(null_cols, nullptr);
  ASSERT_TRUE(null_cols->column(0).has_nulls());

  for (const auto& [what, cols] :
       {std::pair{"NaN lane", nan_cols}, std::pair{"null lane", null_cols}}) {
    const Column& col = cols->column(0);
    const size_t n = cols->num_rows();
    std::vector<QuerySet> batch_out(n);
    gf.MatchBatch(col, n, batch_out.data());
    for (size_t r = 0; r < n; ++r) {
      QuerySet expect;
      gf.Match(col.ValueAt(r), &expect);
      EXPECT_EQ(batch_out[r], expect) << what << " row " << r;
    }
  }
}

TEST(BatchEquivalenceTest, EddyColumnarPrefilterMatchesPerTuple) {
  auto stream = RandomStream(0, 400, 100, 21);
  auto p_kernel = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(70));
  auto p_range = MakeRange({0, "v"}, Value::Int64(10), Value::Int64(90),
                           /*lo_inclusive=*/true, /*hi_inclusive=*/false);
  auto p_costly = MakeCompareConst({0, "v"}, CmpOp::kNe, Value::Int64(55));

  auto run = [&](size_t batch_size) {
    Eddy eddy(MakeLotteryPolicy(5));
    // Two zero-cost kernelizable selections (absorbed by the columnar
    // prefilter on batches >= kPrefilterMinRows) plus a costful one that
    // must still burn through Drain.
    eddy.AddModule(std::make_unique<Selection>("kLt", p_kernel));
    eddy.AddModule(std::make_unique<Selection>("vRange", p_range));
    eddy.AddModule(std::make_unique<Selection>("vNe", p_costly,
                                               /*cost_loops=*/3));
    std::vector<Tuple> results;
    eddy.SetOutput([&](const Tuple& t) { results.push_back(t); });
    if (batch_size == 0) {
      for (const Tuple& t : stream) eddy.Ingest(0, t);
    } else {
      for (const TupleBatch& b : Batched(stream, 0, batch_size)) {
        eddy.IngestBatch(b);
      }
    }
    return results;
  };

  // The prefilter only engages on batches that columnarize; guard against a
  // test-helper regression (distinct schema pointers defeat FromRows).
  ASSERT_NE(Batched(stream, 0, 37).front().columns(), nullptr);

  auto expected = NaiveFilter(stream, {p_kernel, p_range, p_costly});
  auto per_tuple = run(0);
  auto batched = run(37);                        // prefilter engaged
  auto tiny = run(Eddy::kPrefilterMinRows - 1);  // below threshold: Drain only
  EXPECT_EQ(CanonicalMultiset(per_tuple), CanonicalMultiset(expected));
  EXPECT_EQ(CanonicalMultiset(batched), CanonicalMultiset(expected));
  EXPECT_EQ(CanonicalMultiset(tiny), CanonicalMultiset(expected));
}

// ---------------------------------------------------------------------------
// The redesigned batch-building API: NewBatch / BatchBuilder / PushBuilt.

TEST(ServerBatchTest, PushBuiltMatchesPushBatchResults) {
  auto run = [](bool built) {
    TelegraphCQ server;
    EXPECT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
    auto handle = server.Submit(
        "SELECT closingPrice, timestamp FROM ClosingStockPrices "
        "WHERE stockSymbol = 'MSFT' AND closingPrice > 45.0");
    EXPECT_TRUE(handle.ok()) << handle.status();
    server.Start();
    if (built) {
      auto batch = server.NewBatch("ClosingStockPrices");
      EXPECT_TRUE(batch.ok()) << batch.status();
      if (!batch.ok()) return size_t{0};
      EXPECT_EQ(batch->stream(), "ClosingStockPrices");
      for (Timestamp d = 1; d <= 30; ++d) {
        EXPECT_TRUE(batch
                        ->Append(d, {Value::TimestampVal(d),
                                     Value::String("MSFT"),
                                     Value::Double(50.0)})
                        .ok());
        EXPECT_TRUE(batch
                        ->Append(d, {Value::TimestampVal(d),
                                     Value::String("AAPL"),
                                     Value::Double(d % 2 == 0 ? 60.0 : 40.0)})
                        .ok());
      }
      EXPECT_EQ(batch->num_rows(), 60u);
      EXPECT_TRUE(server.PushBuilt(std::move(*batch)).ok());
    } else {
      std::vector<TelegraphCQ::TupleBatchRow> rows;
      for (Timestamp d = 1; d <= 30; ++d) {
        rows.push_back(StockRow(d, "MSFT", 50.0));
        rows.push_back(StockRow(d, "AAPL", d % 2 == 0 ? 60.0 : 40.0));
      }
      EXPECT_TRUE(
          server.PushBatch("ClosingStockPrices", std::move(rows)).ok());
    }
    size_t got = DrainCount(handle->results.get(), 30, 2000);
    server.Stop();
    return got;
  };
  size_t via_rows = run(false);
  size_t via_builder = run(true);
  EXPECT_EQ(via_rows, 30u);
  EXPECT_EQ(via_builder, via_rows);
}

TEST(ServerBatchTest, BatchBuilderRejectsBadRowsWithoutSideEffects) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());

  EXPECT_TRUE(server.NewBatch("NoSuchStream").status().IsNotFound());

  auto batch = server.NewBatch("ClosingStockPrices");
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE(
      batch->Append(1, {Value::TimestampVal(1), Value::String("MSFT"),
                        Value::Double(50.0)})
          .ok());
  // Arity mismatch and type mismatch: typed errors, and the builder keeps
  // exactly the rows that were accepted (no partial appends).
  EXPECT_TRUE(batch->Append(2, {Value::String("MSFT")})
                  .IsInvalidArgument());
  EXPECT_TRUE(batch
                  ->Append(2, {Value::TimestampVal(2), Value::Int64(7),
                               Value::Double(50.0)})
                  .IsInvalidArgument());
  EXPECT_EQ(batch->num_rows(), 1u);

  ASSERT_TRUE(server.CloseStream("ClosingStockPrices").ok());
  // The stream closed between NewBatch and PushBuilt: typed refusal.
  EXPECT_TRUE(server.PushBuilt(std::move(*batch)).IsFailedPrecondition());
  // And a builder for a closed stream is refused up front.
  EXPECT_TRUE(
      server.NewBatch("ClosingStockPrices").status().IsFailedPrecondition());
}

TEST(ServerBatchTest, EmptyBuilderPushIsOkAndIngestsNothing) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  server.Start();
  auto batch = server.NewBatch("ClosingStockPrices");
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->num_rows(), 0u);
  EXPECT_TRUE(server.PushBuilt(std::move(*batch)).ok());
  server.Stop();
  TelegraphCQ::Introspection view = server.Introspect();
  ASSERT_EQ(view.streams.size(), 1u);
  EXPECT_EQ(view.streams[0].tuples_in, 0u);
}

}  // namespace
}  // namespace tcq
