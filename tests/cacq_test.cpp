// CACQ tests: the shared eddy must deliver to each registered query exactly
// what that query would get if executed alone, while actually sharing
// filters and SteMs — plus on-the-fly query addition/removal.

#include <gtest/gtest.h>

#include <map>

#include "cacq/shared_eddy.h"
#include "common/rng.h"
#include "reference/reference.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;
using testref::NaiveFilter;
using testref::NaiveJoin;

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

std::vector<Tuple> RandomStream(SourceId source, size_t n, int64_t key_range,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Row(source, rng.UniformInt(0, key_range - 1),
                      rng.UniformInt(0, 99), static_cast<Timestamp>(i)));
  }
  return out;
}

struct PerQueryCollector {
  std::map<QueryId, std::vector<Tuple>> results;
  SharedEddy::Sink Sink() {
    return [this](QueryId q, const Tuple& t) { results[q].push_back(t); };
  }
};

TEST(SharedEddyTest, SingleFilterQuery) {
  SharedEddy eddy(MakeLotteryPolicy(1));
  eddy.RegisterStream(0, Sch(0));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec spec;
  spec.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(50)});
  auto q = eddy.AddQuery(spec);
  ASSERT_TRUE(q.ok());

  auto stream = RandomStream(0, 300, 100, 1);
  for (const Tuple& t : stream) eddy.Ingest(0, t);

  auto expected = NaiveFilter(
      stream, {MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(50))});
  EXPECT_EQ(CanonicalMultiset(got.results[*q]), CanonicalMultiset(expected));
}

TEST(SharedEddyTest, ManyFilterQueriesEachSeeOwnResults) {
  SharedEddy eddy(MakeLotteryPolicy(2));
  eddy.RegisterStream(0, Sch(0));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  // 32 range queries k in [q, q+30], all sharing one grouped filter.
  std::vector<QueryId> ids;
  for (int64_t q = 0; q < 32; ++q) {
    CQSpec spec;
    spec.filters.push_back({{0, "k"}, CmpOp::kGe, Value::Int64(q)});
    spec.filters.push_back({{0, "k"}, CmpOp::kLe, Value::Int64(q + 30)});
    auto id = eddy.AddQuery(spec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // All 64 factors land in one shared grouped-filter module.
  EXPECT_EQ(eddy.num_modules(), 1u);

  auto stream = RandomStream(0, 500, 100, 2);
  for (const Tuple& t : stream) eddy.Ingest(0, t);

  for (int64_t q = 0; q < 32; ++q) {
    auto expected = NaiveFilter(
        stream,
        {MakeRange({0, "k"}, Value::Int64(q), Value::Int64(q + 30))});
    EXPECT_EQ(CanonicalMultiset(got.results[ids[q]]),
              CanonicalMultiset(expected))
        << "query " << q;
  }
}

TEST(SharedEddyTest, JoinQueryMatchesReference) {
  SharedEddy eddy(MakeLotteryPolicy(3));
  eddy.RegisterStream(0, Sch(0));
  eddy.RegisterStream(1, Sch(1));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec spec;
  spec.joins.push_back({{0, "k"}, {1, "k"}});
  auto q = eddy.AddQuery(spec);
  ASSERT_TRUE(q.ok());

  auto s = RandomStream(0, 100, 15, 3);
  auto t = RandomStream(1, 100, 15, 4);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }
  auto expected =
      NaiveJoin({s, t}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"})});
  EXPECT_EQ(CanonicalMultiset(got.results[*q]), CanonicalMultiset(expected));
}

TEST(SharedEddyTest, MixedFootprintQueriesShareOneDataflow) {
  // q0: filter-only on S; q1: S join T; q2: filter on T. All share.
  SharedEddy eddy(MakeLotteryPolicy(4));
  eddy.RegisterStream(0, Sch(0));
  eddy.RegisterStream(1, Sch(1));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec s0;
  s0.filters.push_back({{0, "v"}, CmpOp::kLt, Value::Int64(30)});
  CQSpec s1;
  s1.joins.push_back({{0, "k"}, {1, "k"}});
  s1.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(10)});
  CQSpec s2;
  s2.filters.push_back({{1, "v"}, CmpOp::kGe, Value::Int64(70)});

  auto q0 = eddy.AddQuery(s0);
  auto q1 = eddy.AddQuery(s1);
  auto q2 = eddy.AddQuery(s2);
  ASSERT_TRUE(q0.ok() && q1.ok() && q2.ok());

  auto s = RandomStream(0, 150, 12, 5);
  auto t = RandomStream(1, 150, 12, 6);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }

  EXPECT_EQ(CanonicalMultiset(got.results[*q0]),
            CanonicalMultiset(NaiveFilter(
                s, {MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(30))})));
  EXPECT_EQ(
      CanonicalMultiset(got.results[*q1]),
      CanonicalMultiset(NaiveJoin(
          {s, t},
          {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
           MakeCompareConst({0, "v"}, CmpOp::kGe, Value::Int64(10))})));
  EXPECT_EQ(CanonicalMultiset(got.results[*q2]),
            CanonicalMultiset(NaiveFilter(
                t, {MakeCompareConst({1, "v"}, CmpOp::kGe, Value::Int64(70))})));
}

TEST(SharedEddyTest, ResidualPredicateQuery) {
  // The paper's §4.1 example shape: join on timestamp equality plus a
  // non-equi residual (c2.closingPrice > c1.closingPrice).
  SharedEddy eddy(MakeLotteryPolicy(5));
  eddy.RegisterStream(0, Sch(0));
  eddy.RegisterStream(1, Sch(1));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec spec;
  spec.joins.push_back({{0, "k"}, {1, "k"}});
  spec.residuals.push_back(
      MakeCompareAttrs({1, "v"}, CmpOp::kGt, {0, "v"}));
  auto q = eddy.AddQuery(spec);
  ASSERT_TRUE(q.ok());

  auto s = RandomStream(0, 120, 10, 7);
  auto t = RandomStream(1, 120, 10, 8);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }
  auto expected =
      NaiveJoin({s, t}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
                         MakeCompareAttrs({1, "v"}, CmpOp::kGt, {0, "v"})});
  EXPECT_EQ(CanonicalMultiset(got.results[*q]), CanonicalMultiset(expected));
}

TEST(SharedEddyTest, QueriesAddedMidStreamSeeOnlyNewData) {
  SharedEddy eddy(MakeLotteryPolicy(6));
  eddy.RegisterStream(0, Sch(0));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  auto stream = RandomStream(0, 200, 100, 9);
  CQSpec spec;
  spec.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(100)});

  std::optional<QueryId> q;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i == 100) {
      auto r = eddy.AddQuery(spec);
      ASSERT_TRUE(r.ok());
      q = *r;
    }
    eddy.Ingest(0, stream[i]);
  }
  ASSERT_TRUE(q.has_value());
  // The filter passes everything (k < 100 always); the query should have
  // exactly the second half of the stream.
  EXPECT_EQ(got.results[*q].size(), 100u);
}

TEST(SharedEddyTest, RemovedQueriesStopReceiving) {
  SharedEddy eddy(MakeLotteryPolicy(7));
  eddy.RegisterStream(0, Sch(0));
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec spec;
  spec.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(100)});
  auto q = eddy.AddQuery(spec);
  ASSERT_TRUE(q.ok());

  auto stream = RandomStream(0, 100, 100, 10);
  for (size_t i = 0; i < 50; ++i) eddy.Ingest(0, stream[i]);
  ASSERT_TRUE(eddy.RemoveQuery(*q).ok());
  for (size_t i = 50; i < 100; ++i) eddy.Ingest(0, stream[i]);

  EXPECT_EQ(got.results[*q].size(), 50u);
  // Removing again is an error.
  EXPECT_TRUE(eddy.RemoveQuery(*q).IsNotFound());
}

TEST(SharedEddyTest, JoinQueriesShareStems) {
  SharedEddy eddy(MakeLotteryPolicy(8));
  eddy.RegisterStream(0, Sch(0));
  eddy.RegisterStream(1, Sch(1));

  // Ten queries over the same join edge with different filters.
  for (int64_t i = 0; i < 10; ++i) {
    CQSpec spec;
    spec.joins.push_back({{0, "k"}, {1, "k"}});
    spec.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(i * 10)});
    ASSERT_TRUE(eddy.AddQuery(spec).ok());
  }
  // Modules: 2 probe directions + 1 grouped filter = 3, not 30.
  EXPECT_EQ(eddy.num_modules(), 3u);
}

TEST(SharedEddyTest, WindowedSharedJoinEvicts) {
  SharedEddy eddy(MakeLotteryPolicy(9));
  eddy.RegisterStream(0, Sch(0), StemOptions{.key_attr = "", .max_count = 0, .window = 5});
  eddy.RegisterStream(1, Sch(1), StemOptions{.key_attr = "", .max_count = 0, .window = 5});
  PerQueryCollector got;
  eddy.SetOutput(got.Sink());

  CQSpec spec;
  spec.joins.push_back({{0, "k"}, {1, "k"}});
  auto q = eddy.AddQuery(spec);
  ASSERT_TRUE(q.ok());

  eddy.Ingest(0, Row(0, 7, 1, 0));
  eddy.AdvanceTime(100);
  eddy.Ingest(1, Row(1, 7, 2, 100));  // partner expired: no result
  EXPECT_TRUE(got.results[*q].empty());

  eddy.Ingest(0, Row(0, 9, 1, 101));
  eddy.Ingest(1, Row(1, 9, 2, 102));
  EXPECT_EQ(got.results[*q].size(), 1u);
}

TEST(SharedEddyTest, UnregisteredStreamIsAnError) {
  SharedEddy eddy(MakeLotteryPolicy(10));
  eddy.RegisterStream(0, Sch(0));
  CQSpec spec;
  spec.filters.push_back({{5, "k"}, CmpOp::kLt, Value::Int64(1)});
  EXPECT_TRUE(eddy.AddQuery(spec).status().IsNotFound());

  CQSpec bad_attr;
  bad_attr.filters.push_back({{0, "nope"}, CmpOp::kLt, Value::Int64(1)});
  EXPECT_TRUE(eddy.AddQuery(bad_attr).status().IsNotFound());
}

TEST(QueryRegistryTest, FootprintAndInterestSets) {
  QueryRegistry reg;
  CQSpec spec;
  spec.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(1)});
  spec.joins.push_back({{0, "k"}, {1, "k"}});
  QueryId q = reg.Add(spec);
  EXPECT_EQ(reg.Get(q)->footprint, SourceBit(0) | SourceBit(1));
  EXPECT_TRUE(reg.QueriesTouching(0).Contains(q));
  EXPECT_TRUE(reg.QueriesTouching(1).Contains(q));
  EXPECT_FALSE(reg.QueriesTouching(2).Contains(q));
  ASSERT_TRUE(reg.Remove(q).ok());
  EXPECT_FALSE(reg.QueriesTouching(0).Contains(q));
  EXPECT_EQ(reg.num_active(), 0u);
}

}  // namespace
}  // namespace tcq
