// Tests for the remaining Fig.-1 query modules: Sort (windowed sort +
// streaming top-K) and TransitiveClosure (incremental reachability),
// including closure-vs-brute-force property checks and use inside an eddy.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "eddy/eddy.h"
#include "operators/selection.h"
#include "operators/sort.h"
#include "operators/transitive_closure.h"

namespace tcq {
namespace {

SchemaRef Sch(SourceId source = 0) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(int64_t k, int64_t v, Timestamp ts = 0) {
  return Tuple::Make(Sch(), {Value::Int64(k), Value::Int64(v)}, ts);
}

// --- Sort -----------------------------------------------------------------

TEST(SortTest, SortsAscendingAndDescending) {
  std::vector<Tuple> tuples = {Row(3, 0), Row(1, 1), Row(2, 2)};
  SortTuplesBy(&tuples, {0, "k"});
  EXPECT_EQ(tuples[0].Get("k").AsInt64(), 1);
  EXPECT_EQ(tuples[2].Get("k").AsInt64(), 3);
  SortTuplesBy(&tuples, {0, "k"}, /*ascending=*/false);
  EXPECT_EQ(tuples[0].Get("k").AsInt64(), 3);
}

TEST(SortTest, StableOnTies) {
  std::vector<Tuple> tuples = {Row(1, 10), Row(1, 20), Row(0, 30)};
  SortTuplesBy(&tuples, {0, "k"});
  EXPECT_EQ(tuples[0].Get("v").AsInt64(), 30);
  EXPECT_EQ(tuples[1].Get("v").AsInt64(), 10);  // original order kept
  EXPECT_EQ(tuples[2].Get("v").AsInt64(), 20);
}

TEST(TopKTest, KeepsKLargest) {
  TopK topk(3, {0, "k"});
  for (int64_t k : {5, 1, 9, 7, 3, 8}) topk.Add(Row(k, 0));
  auto snap = topk.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].Get("k").AsInt64(), 9);
  EXPECT_EQ(snap[1].Get("k").AsInt64(), 8);
  EXPECT_EQ(snap[2].Get("k").AsInt64(), 7);
}

TEST(TopKTest, KeepsKSmallest) {
  TopK topk(2, {0, "k"}, /*largest=*/false);
  for (int64_t k : {5, 1, 9, 7, 3}) topk.Add(Row(k, 0));
  auto snap = topk.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].Get("k").AsInt64(), 1);
  EXPECT_EQ(snap[1].Get("k").AsInt64(), 3);
}

TEST(TopKTest, FewerThanKElements) {
  TopK topk(10, {0, "k"});
  topk.Add(Row(2, 0));
  topk.Add(Row(1, 0));
  auto snap = topk.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].Get("k").AsInt64(), 2);
}

TEST(TopKTest, MatchesFullSortProperty) {
  Rng rng(3);
  TopK topk(16, {0, "k"});
  std::vector<Tuple> all;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = Row(rng.UniformInt(0, 1000000), i);
    topk.Add(t);
    all.push_back(t);
  }
  SortTuplesBy(&all, {0, "k"}, /*ascending=*/false);
  auto snap = topk.Snapshot();
  ASSERT_EQ(snap.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(snap[i].Get("k").AsInt64(), all[i].Get("k").AsInt64())
        << "rank " << i;
  }
}

// --- TransitiveClosure -------------------------------------------------------

TEST(TransitiveClosureTest, ChainDerivesAllPairs) {
  TransitiveClosure tc;
  auto d1 = tc.AddEdge(1, 2);
  EXPECT_EQ(d1.size(), 1u);  // (1,2)
  auto d2 = tc.AddEdge(2, 3);
  // New: (2,3) and (1,3).
  EXPECT_EQ(d2.size(), 2u);
  EXPECT_TRUE(tc.Reaches(1, 3));
  auto d3 = tc.AddEdge(3, 4);
  // New: (3,4), (2,4), (1,4).
  EXPECT_EQ(d3.size(), 3u);
  EXPECT_EQ(tc.closure_size(), 6u);  // all pairs of the 4-chain
}

TEST(TransitiveClosureTest, DuplicateAndRedundantEdges) {
  TransitiveClosure tc;
  tc.AddEdge(1, 2);
  tc.AddEdge(2, 3);
  EXPECT_TRUE(tc.AddEdge(1, 2).empty());  // duplicate
  EXPECT_TRUE(tc.AddEdge(1, 3).empty());  // already derived
}

TEST(TransitiveClosureTest, JoiningTwoComponents) {
  TransitiveClosure tc;
  tc.AddEdge(1, 2);   // component A
  tc.AddEdge(10, 11); // component B
  auto fresh = tc.AddEdge(2, 10);  // bridge
  // New: (2,10),(2,11),(1,10),(1,11).
  EXPECT_EQ(fresh.size(), 4u);
  EXPECT_TRUE(tc.Reaches(1, 11));
  EXPECT_FALSE(tc.Reaches(11, 1));
}

TEST(TransitiveClosureTest, CyclesAreHandled) {
  TransitiveClosure tc;
  tc.AddEdge(1, 2);
  tc.AddEdge(2, 3);
  auto fresh = tc.AddEdge(3, 1);  // closes a cycle
  // Everyone reaches everyone else (irreflexive): new pairs are
  // (3,1),(3,2),(2,1) — (x,x) pairs are excluded.
  EXPECT_EQ(fresh.size(), 3u);
  EXPECT_TRUE(tc.Reaches(3, 2));
  EXPECT_FALSE(tc.Reaches(1, 1));
  EXPECT_EQ(tc.closure_size(), 6u);
}

// Brute-force reachability via Floyd-Warshall for the property check.
std::set<std::pair<int64_t, int64_t>> BruteClosure(
    const std::vector<std::pair<int64_t, int64_t>>& edges) {
  std::set<int64_t> nodes;
  std::set<std::pair<int64_t, int64_t>> reach(edges.begin(), edges.end());
  for (auto [a, b] : edges) {
    nodes.insert(a);
    nodes.insert(b);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int64_t k : nodes) {
      for (int64_t i : nodes) {
        if (!reach.contains({i, k})) continue;
        for (int64_t j : nodes) {
          if (reach.contains({k, j}) && i != j &&
              reach.insert({i, j}).second) {
            changed = true;
          }
        }
      }
    }
  }
  std::erase_if(reach, [](const auto& p) { return p.first == p.second; });
  return reach;
}

TEST(TransitiveClosureTest, MatchesBruteForceProperty) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    TransitiveClosure tc;
    std::vector<std::pair<int64_t, int64_t>> edges;
    std::set<std::pair<int64_t, int64_t>> incremental;
    for (int e = 0; e < 25; ++e) {
      int64_t a = rng.UniformInt(0, 9), b = rng.UniformInt(0, 9);
      if (a == b) continue;
      edges.emplace_back(a, b);
      for (auto p : tc.AddEdge(a, b)) incremental.insert(p);
    }
    EXPECT_EQ(incremental, BruteClosure(edges)) << "trial " << trial;
    EXPECT_EQ(tc.closure_size(), incremental.size());
  }
}

TEST(TransitiveClosureModuleTest, EmitsDerivedPairsThroughEddy) {
  // Edge stream (source 0) -> closure module -> derived reachability stream
  // (source 1) -> filter: "alert when node 0 can reach node 5". Modelling
  // the closure output as its own derived source keeps the eddy's modules
  // commutative: the alert filter cannot apply to raw edges, only to
  // derived pairs.
  SchemaRef edge_schema = Schema::Make({{"src", ValueType::kInt64, 0},
                                        {"dst", ValueType::kInt64, 0}});
  SchemaRef closure_schema = Schema::Make({{"src", ValueType::kInt64, 1},
                                           {"dst", ValueType::kInt64, 1}});
  Eddy eddy(MakeLotteryPolicy(1));
  eddy.AddModule(std::make_unique<TransitiveClosureModule>(
      "tc", AttrRef{0, "src"}, AttrRef{0, "dst"}, closure_schema));
  eddy.AddModule(std::make_unique<Selection>(
      "alert",
      MakeAnd({MakeCompareConst({1, "src"}, CmpOp::kEq, Value::Int64(0)),
               MakeCompareConst({1, "dst"}, CmpOp::kEq, Value::Int64(5))})));
  eddy.SetRequiredSources(SourceBit(1));  // outputs are derived pairs
  std::vector<Tuple> alerts;
  eddy.SetOutput([&](const Tuple& t) { alerts.push_back(t); });

  auto edge = [&](int64_t a, int64_t b, Timestamp ts) {
    eddy.Ingest(0, Tuple::Make(edge_schema,
                               {Value::Int64(a), Value::Int64(b)}, ts));
  };
  edge(0, 1, 1);
  edge(2, 5, 2);
  EXPECT_TRUE(alerts.empty());
  edge(1, 2, 3);  // closes the path 0 -> 1 -> 2 -> 5
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].Get("src").AsInt64(), 0);
  EXPECT_EQ(alerts[0].Get("dst").AsInt64(), 5);
}

}  // namespace
}  // namespace tcq
