// Tests for the common substrate: Status/Result, Rng, clocks, QuerySet.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/query_set.h"
#include "common/rng.h"
#include "common/status.h"

namespace tcq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIOError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    TCQ_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::OutOfRange("window past end");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = []() -> Result<int> { return 5; };
  auto use = [&]() -> Result<int> {
    TCQ_ASSIGN_OR_RETURN(int v, make());
    return v * 2;
  };
  ASSERT_TRUE(use().ok());
  EXPECT_EQ(use().value(), 10);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfSkewsTowardsZero) {
  Rng rng(3);
  const uint64_t n = 100;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(n, 0.99)];
  // Rank 0 should dominate rank 50 heavily under theta ~ 1.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(3);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(n, 0.0)];
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], 5000, 500) << "rank " << i;
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::multiset<int> got(v.begin(), v.end());
  EXPECT_EQ(got, (std::multiset<int>{1, 2, 3, 4, 5}));
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, WallClockMonotone) {
  WallClock clock;
  Timestamp a = clock.Now();
  Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SequenceCounterThreadSafe) {
  SequenceCounter counter;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) counter.Next();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Peek(), 4000);
}

TEST(QuerySetTest, AddRemoveContains) {
  QuerySet s;
  s.Add(3);
  s.Add(100);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(4));
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1u);
}

TEST(QuerySetTest, AllAndEmpty) {
  QuerySet s = QuerySet::All(70);
  EXPECT_EQ(s.Count(), 70u);
  EXPECT_FALSE(s.Empty());
  EXPECT_TRUE(QuerySet().Empty());
}

TEST(QuerySetTest, SetAlgebra) {
  QuerySet a, b;
  a.Add(1);
  a.Add(2);
  a.Add(65);
  b.Add(2);
  b.Add(65);
  b.Add(90);

  QuerySet inter = a;
  inter.IntersectWith(b);
  EXPECT_EQ(inter.ToVector(), (std::vector<QueryId>{2, 65}));

  QuerySet uni = a;
  uni.UnionWith(b);
  EXPECT_EQ(uni.ToVector(), (std::vector<QueryId>{1, 2, 65, 90}));

  QuerySet diff = a;
  diff.SubtractWith(b);
  EXPECT_EQ(diff.ToVector(), (std::vector<QueryId>{1}));

  EXPECT_TRUE(a.Intersects(b));
  QuerySet disjoint;
  disjoint.Add(40);
  EXPECT_FALSE(a.Intersects(disjoint));
}

TEST(QuerySetTest, ForEachAscending) {
  QuerySet s;
  s.Add(5);
  s.Add(64);
  s.Add(0);
  std::vector<QueryId> seen;
  s.ForEach([&](QueryId q) { seen.push_back(q); });
  EXPECT_EQ(seen, (std::vector<QueryId>{0, 5, 64}));
}

TEST(QuerySetTest, EqualityIgnoresWidth) {
  QuerySet a(10), b(200);
  a.Add(3);
  b.Add(3);
  EXPECT_TRUE(a == b);
  b.Add(150);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace tcq
