// Eddy tests: correctness of adaptive routing against the naive reference
// evaluator, for every routing policy and for the adaptivity knobs
// (batching, operator fixing). The central property: an eddy's output is
// plan-invariant — any routing order yields the same result multiset.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "eddy/eddy.h"
#include "eddy/routing_policy.h"
#include "operators/selection.h"
#include "reference/reference.h"
#include "stem/stem.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;
using testref::NaiveFilter;
using testref::NaiveJoin;

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

std::vector<Tuple> RandomStream(SourceId source, size_t n, int64_t key_range,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Row(source, rng.UniformInt(0, key_range - 1),
                      rng.UniformInt(0, 99), static_cast<Timestamp>(i)));
  }
  return out;
}

// Collects eddy output into a vector.
struct Collector {
  std::vector<Tuple> tuples;
  std::function<void(const Tuple&)> Sink() {
    return [this](const Tuple& t) { tuples.push_back(t); };
  }
};

std::unique_ptr<RoutingPolicy> MakePolicy(const std::string& kind) {
  if (kind == "lottery") return MakeLotteryPolicy(7);
  if (kind == "round-robin") return MakeRoundRobinPolicy();
  if (kind == "greedy") return MakeGreedyPolicy(0.1, 7);
  if (kind == "fixed") return MakeFixedOrderPolicy({0, 1, 2, 3});
  if (kind == "fixed-reversed") return MakeFixedOrderPolicy({3, 2, 1, 0});
  ADD_FAILURE() << "unknown policy " << kind;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Filter-only queries.
// ---------------------------------------------------------------------------

class EddyPolicyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EddyPolicyTest, TwoFiltersMatchReference) {
  auto p1 = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(50));
  auto p2 = MakeCompareConst({0, "v"}, CmpOp::kGe, Value::Int64(20));

  Eddy eddy(MakePolicy(GetParam()));
  eddy.AddModule(std::make_unique<Selection>("f1", p1));
  eddy.AddModule(std::make_unique<Selection>("f2", p2));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto stream = RandomStream(0, 500, 100, 1);
  for (const Tuple& t : stream) eddy.Ingest(0, t);

  auto expected = NaiveFilter(stream, {p1, p2});
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
  EXPECT_EQ(eddy.tuples_output(), expected.size());
}

TEST_P(EddyPolicyTest, SymmetricHashJoinMatchesReference) {
  // S(k,v) join T(k,v) on S.k = T.k, interleaved arrival.
  auto stem_s = std::make_shared<SteM>("stemS", 0, Sch(0),
                                       StemOptions{.key_attr = "k"});
  auto stem_t = std::make_shared<SteM>("stemT", 1, Sch(1),
                                       StemOptions{.key_attr = "k"});

  Eddy eddy(MakePolicy(GetParam()));
  eddy.AttachSteM(stem_s);
  eddy.AttachSteM(stem_t);
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeS", stem_s.get(),
      JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT", stem_t.get(),
      JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto s = RandomStream(0, 120, 20, 2);
  auto t = RandomStream(1, 120, 20, 3);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }

  auto expected = NaiveJoin(
      {s, t}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"})});
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

TEST_P(EddyPolicyTest, JoinPlusFiltersMatchReference) {
  auto stem_s = std::make_shared<SteM>("stemS", 0, Sch(0),
                                       StemOptions{.key_attr = "k"});
  auto stem_t = std::make_shared<SteM>("stemT", 1, Sch(1),
                                       StemOptions{.key_attr = "k"});
  auto f_s = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(70));
  auto f_t = MakeCompareConst({1, "v"}, CmpOp::kGe, Value::Int64(10));

  Eddy eddy(MakePolicy(GetParam()));
  eddy.AttachSteM(stem_s);
  eddy.AttachSteM(stem_t);
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeS", stem_s.get(),
      JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT", stem_t.get(),
      JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
  eddy.AddModule(std::make_unique<Selection>("fS", f_s));
  eddy.AddModule(std::make_unique<Selection>("fT", f_t));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto s = RandomStream(0, 100, 15, 4);
  auto t = RandomStream(1, 100, 15, 5);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }

  auto expected = NaiveJoin(
      {s, t},
      {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}), f_s, f_t});
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

TEST_P(EddyPolicyTest, ThreeWayJoinMatchesReference) {
  // Chain join: S.k = T.k and T.v = U.k (predicates form a path S-T-U).
  auto stem_s = std::make_shared<SteM>("stemS", 0, Sch(0),
                                       StemOptions{.key_attr = "k"});
  auto stem_t = std::make_shared<SteM>("stemT", 1, Sch(1),
                                       StemOptions{.key_attr = "k"});
  auto stem_u = std::make_shared<SteM>("stemU", 2, Sch(2),
                                       StemOptions{.key_attr = "k"});

  // One probe module per join-predicate edge touching each SteM, with the
  // full predicate list so cross-edge predicates are enforced on
  // concatenations as soon as they become evaluable.
  std::vector<PredicateRef> join_preds = {
      MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
      MakeCompareAttrs({1, "v"}, CmpOp::kEq, {2, "k"})};

  Eddy eddy(MakePolicy(GetParam()));
  eddy.AttachSteM(stem_s);
  eddy.AttachSteM(stem_t);
  eddy.AttachSteM(stem_u);
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeS", stem_s.get(),
      JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, join_preds}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT.bySk", stem_t.get(),
      JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, join_preds}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT.byUk", stem_t.get(),
      JoinSpec{AttrRef{2, "k"}, AttrRef{1, "v"}, join_preds}));
  // U joins T on T.v = U.k.
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeU", stem_u.get(),
      JoinSpec{AttrRef{1, "v"}, AttrRef{2, "k"}, join_preds}));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto s = RandomStream(0, 60, 8, 6);
  auto t = RandomStream(1, 60, 8, 7);
  auto u = RandomStream(2, 60, 8, 8);
  // Narrow T.v so the T-U join has hits: remap v into the key range.
  for (auto& tup : t) {
    tup = Row(1, tup.Get("k").AsInt64(), tup.Get("v").AsInt64() % 8,
              tup.timestamp());
  }
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
    eddy.Ingest(2, u[i]);
  }

  auto expected =
      NaiveJoin({s, t, u}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
                            MakeCompareAttrs({1, "v"}, CmpOp::kEq, {2, "k"})});
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EddyPolicyTest,
                         ::testing::Values("lottery", "round-robin", "greedy",
                                           "fixed", "fixed-reversed"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Adaptivity knobs: batching and operator fixing must not change results.
// ---------------------------------------------------------------------------

struct KnobParam {
  uint32_t batch_size;
  uint32_t fix_len;
};

class EddyKnobTest : public ::testing::TestWithParam<KnobParam> {};

TEST_P(EddyKnobTest, KnobsPreserveResults) {
  auto [batch, fix] = GetParam();
  auto p1 = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(60));
  auto p2 = MakeCompareConst({0, "v"}, CmpOp::kGe, Value::Int64(30));
  auto p3 = MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(90));

  Eddy eddy(MakeLotteryPolicy(11), Eddy::Options{batch, fix});
  eddy.AddModule(std::make_unique<Selection>("f1", p1));
  eddy.AddModule(std::make_unique<Selection>("f2", p2));
  eddy.AddModule(std::make_unique<Selection>("f3", p3));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto stream = RandomStream(0, 800, 100, 9);
  for (const Tuple& t : stream) eddy.Ingest(0, t);

  auto expected = NaiveFilter(stream, {p1, p2, p3});
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

TEST_P(EddyKnobTest, KnobsPreserveJoinResults) {
  auto [batch, fix] = GetParam();
  auto stem_s = std::make_shared<SteM>("stemS", 0, Sch(0),
                                       StemOptions{.key_attr = "k"});
  auto stem_t = std::make_shared<SteM>("stemT", 1, Sch(1),
                                       StemOptions{.key_attr = "k"});
  Eddy eddy(MakeLotteryPolicy(13), Eddy::Options{batch, fix});
  eddy.AttachSteM(stem_s);
  eddy.AttachSteM(stem_t);
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeS", stem_s.get(),
      JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT", stem_t.get(),
      JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto s = RandomStream(0, 80, 10, 14);
  auto t = RandomStream(1, 80, 10, 15);
  for (size_t i = 0; i < s.size(); ++i) {
    eddy.Ingest(0, s[i]);
    eddy.Ingest(1, t[i]);
  }
  auto expected =
      NaiveJoin({s, t}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"})});
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

INSTANTIATE_TEST_SUITE_P(
    KnobSweep, EddyKnobTest,
    ::testing::Values(KnobParam{1, 1}, KnobParam{8, 1}, KnobParam{64, 1},
                      KnobParam{1, 2}, KnobParam{1, 4}, KnobParam{32, 3}),
    [](const auto& info) {
      return "batch" + std::to_string(info.param.batch_size) + "_fix" +
             std::to_string(info.param.fix_len);
    });

// ---------------------------------------------------------------------------
// Behavioural details.
// ---------------------------------------------------------------------------

TEST(EddyTest, BatchingReducesRoutingDecisions) {
  auto make_eddy = [](uint32_t batch) {
    auto eddy = std::make_unique<Eddy>(MakeLotteryPolicy(3),
                                       Eddy::Options{batch, 1});
    eddy->AddModule(std::make_unique<Selection>(
        "f1", MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(50))));
    eddy->AddModule(std::make_unique<Selection>(
        "f2", MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(50))));
    return eddy;
  };
  auto stream = RandomStream(0, 1000, 100, 21);

  auto fine = make_eddy(1);
  auto coarse = make_eddy(64);
  for (const Tuple& t : stream) {
    fine->Ingest(0, t);
    coarse->Ingest(0, t);
  }
  EXPECT_LT(coarse->routing_decisions(), fine->routing_decisions() / 4);
  EXPECT_EQ(fine->tuples_output(), coarse->tuples_output());
}

TEST(EddyTest, LotteryLearnsToRouteToSelectiveFilterFirst) {
  // f_selective drops 99%, f_permissive drops 1%. After a warmup, the
  // lottery should send most tuples to the selective filter first, so the
  // permissive filter sees far fewer tuples than the selective one.
  auto selective = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(1));
  auto permissive = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(99));

  Eddy eddy(MakeLotteryPolicy(5));
  size_t s_slot = eddy.AddModule(std::make_unique<Selection>("sel", selective));
  size_t p_slot =
      eddy.AddModule(std::make_unique<Selection>("perm", permissive));

  auto stream = RandomStream(0, 5000, 100, 22);
  for (const Tuple& t : stream) eddy.Ingest(0, t);

  uint64_t s_seen = eddy.module(s_slot)->consumed();
  uint64_t p_seen = eddy.module(p_slot)->consumed();
  EXPECT_GT(s_seen, p_seen * 2)
      << "lottery failed to favour the selective filter";
}

TEST(EddyTest, WindowedJoinEvictsOldState) {
  auto stem_s = std::make_shared<SteM>(
      "stemS", 0, Sch(0), StemOptions{.key_attr = "k", .window = 5});
  auto stem_t = std::make_shared<SteM>(
      "stemT", 1, Sch(1), StemOptions{.key_attr = "k", .window = 5});
  Eddy eddy(MakeLotteryPolicy(5));
  eddy.AttachSteM(stem_s);
  eddy.AttachSteM(stem_t);
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeS", stem_s.get(),
      JoinSpec{AttrRef{1, "k"}, AttrRef{0, "k"}, {}}));
  eddy.AddModule(std::make_unique<SteMProbe>(
      "probeT", stem_t.get(),
      JoinSpec{AttrRef{0, "k"}, AttrRef{1, "k"}, {}}));
  Collector got;
  eddy.SetOutput(got.Sink());

  // Matching keys 100 time units apart: outside any 5-unit window.
  eddy.Ingest(0, Row(0, 7, 1, 0));
  eddy.AdvanceTime(100);
  eddy.Ingest(1, Row(1, 7, 2, 100));
  EXPECT_TRUE(got.tuples.empty());

  // Matching keys close in time: joined.
  eddy.Ingest(0, Row(0, 9, 1, 101));
  eddy.Ingest(1, Row(1, 9, 2, 102));
  EXPECT_EQ(got.tuples.size(), 1u);
}

TEST(EddyTest, ContentDriftIsHandled) {
  // Swap a filter's predicate mid-stream (the eddy re-learns); results must
  // equal applying the first predicate to the first half and the second to
  // the second half.
  auto phase1 = MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(10));
  auto phase2 = MakeCompareConst({0, "k"}, CmpOp::kGe, Value::Int64(90));

  Eddy eddy(MakeLotteryPolicy(5));
  auto sel = std::make_unique<Selection>("drift", phase1);
  Selection* sel_ptr = sel.get();
  eddy.AddModule(std::move(sel));
  Collector got;
  eddy.SetOutput(got.Sink());

  auto stream = RandomStream(0, 400, 100, 30);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i == stream.size() / 2) sel_ptr->ReplacePredicate(phase2);
    eddy.Ingest(0, stream[i]);
  }

  std::vector<Tuple> first_half(stream.begin(),
                                stream.begin() + stream.size() / 2);
  std::vector<Tuple> second_half(stream.begin() + stream.size() / 2,
                                 stream.end());
  auto expected = NaiveFilter(first_half, {phase1});
  auto expected2 = NaiveFilter(second_half, {phase2});
  expected.insert(expected.end(), expected2.begin(), expected2.end());
  EXPECT_EQ(CanonicalMultiset(got.tuples), CanonicalMultiset(expected));
}

TEST(EddyTest, StructuralChangesInvalidateDecisionCache) {
  // Regression: AddModule cleared the decision cache but AttachSteM and
  // SetRequiredSources did not, so with batching enabled a routing decision
  // taken before a structural change kept being replayed after it. The
  // cache hit is observable through the routing-decision counter.
  Eddy eddy(MakeRoundRobinPolicy(), Eddy::Options{.batch_size = 8});
  eddy.AddModule(std::make_unique<Selection>(
      "f", MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(1000))));

  eddy.Ingest(0, Row(0, 1, 0, 0));
  EXPECT_EQ(eddy.routing_decisions(), 1u);
  eddy.Ingest(0, Row(0, 2, 0, 1));
  EXPECT_EQ(eddy.routing_decisions(), 1u);  // same-signature batch: cache hit

  // The SteM widens the eddy's span; cached orders predate it and must not
  // be replayed.
  eddy.AttachSteM(std::make_shared<SteM>("stemT", 1, Sch(1),
                                         StemOptions{.key_attr = "k"}));
  eddy.Ingest(0, Row(0, 3, 0, 2));
  EXPECT_EQ(eddy.routing_decisions(), 2u);  // fresh decision, not the cache

  eddy.Ingest(0, Row(0, 4, 0, 3));
  EXPECT_EQ(eddy.routing_decisions(), 2u);  // new batch resumes caching

  // Overriding the completion footprint likewise invalidates the cache.
  eddy.SetRequiredSources(SourceBit(0));
  eddy.Ingest(0, Row(0, 5, 0, 4));
  EXPECT_EQ(eddy.routing_decisions(), 3u);
}

TEST(EddyTest, StatsAreConsistent) {
  Eddy eddy(MakeRoundRobinPolicy());
  eddy.AddModule(std::make_unique<Selection>(
      "f", MakeCompareConst({0, "k"}, CmpOp::kLt, Value::Int64(50))));
  Collector got;
  eddy.SetOutput(got.Sink());
  auto stream = RandomStream(0, 200, 100, 31);
  for (const Tuple& t : stream) eddy.Ingest(0, t);
  EXPECT_EQ(eddy.tuples_ingested(), 200u);
  EXPECT_EQ(eddy.tuples_output(), got.tuples.size());
  EXPECT_GE(eddy.module_invocations(), eddy.tuples_ingested());
  EXPECT_EQ(eddy.module(0)->consumed(), 200u);
  EXPECT_EQ(eddy.module(0)->passed() + eddy.module(0)->dropped(), 200u);
}

}  // namespace
}  // namespace tcq
