// Egress tests: push egress shedding policies, blocking semantics, and the
// pull egress "what happened since I left" cursor.

#include <gtest/gtest.h>

#include <thread>

#include "egress/egress.h"

namespace tcq {
namespace {

SchemaRef Sch() {
  return Schema::Make({{"v", ValueType::kInt64, 0}});
}

Delivery D(uint64_t qid, int64_t v, Timestamp ts) {
  return Delivery{qid, Tuple::Make(Sch(), {Value::Int64(v)}, ts)};
}

TEST(PushEgressTest, DeliversInOrder) {
  PushEgress egress;
  egress.Offer(D(1, 10, 1));
  egress.Offer(D(1, 20, 2));
  Delivery d;
  ASSERT_TRUE(egress.Poll(&d));
  EXPECT_EQ(d.tuple.Get("v").AsInt64(), 10);
  ASSERT_TRUE(egress.Poll(&d));
  EXPECT_EQ(d.tuple.Get("v").AsInt64(), 20);
  EXPECT_FALSE(egress.Poll(&d));
}

TEST(PushEgressTest, DropNewestSheds) {
  PushEgress egress({.capacity = 2, .shed = ShedPolicy::kDropNewest});
  EXPECT_TRUE(egress.Offer(D(1, 1, 1)));
  EXPECT_TRUE(egress.Offer(D(1, 2, 2)));
  EXPECT_FALSE(egress.Offer(D(1, 3, 3)));  // shed
  EXPECT_EQ(egress.shed(), 1u);
  Delivery d;
  ASSERT_TRUE(egress.Poll(&d));
  EXPECT_EQ(d.tuple.Get("v").AsInt64(), 1);  // oldest kept
}

TEST(PushEgressTest, DropOldestKeepsFreshest) {
  PushEgress egress({.capacity = 2, .shed = ShedPolicy::kDropOldest});
  egress.Offer(D(1, 1, 1));
  egress.Offer(D(1, 2, 2));
  egress.Offer(D(1, 3, 3));
  EXPECT_EQ(egress.shed(), 1u);
  Delivery d;
  ASSERT_TRUE(egress.Poll(&d));
  EXPECT_EQ(d.tuple.Get("v").AsInt64(), 2);
}

TEST(PushEgressTest, BlockAppliesBackpressure) {
  PushEgress egress({.capacity = 1, .shed = ShedPolicy::kBlock});
  ASSERT_TRUE(egress.Offer(D(1, 1, 1)));
  std::thread producer([&] { EXPECT_TRUE(egress.Offer(D(1, 2, 2))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Delivery d;
  ASSERT_TRUE(egress.Receive(&d));
  producer.join();
  ASSERT_TRUE(egress.Receive(&d));
  EXPECT_EQ(d.tuple.Get("v").AsInt64(), 2);
  EXPECT_EQ(egress.shed(), 0u);
}

TEST(PushEgressTest, CloseWakesReceivers) {
  PushEgress egress;
  std::thread client([&] {
    Delivery d;
    EXPECT_FALSE(egress.Receive(&d));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  egress.Close();
  client.join();
  EXPECT_FALSE(egress.Offer(D(1, 1, 1)));
}

TEST(PullEgressTest, FetchSinceCursor) {
  PullEgress egress;
  for (Timestamp t = 1; t <= 10; ++t) egress.Log(D(7, t, t));
  std::vector<Tuple> out;
  Timestamp cursor = egress.FetchSince(7, 0, &out);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(cursor, 10);
  // Client disconnects; more results arrive; reconnect with cursor.
  for (Timestamp t = 11; t <= 15; ++t) egress.Log(D(7, t, t));
  out.clear();
  cursor = egress.FetchSince(7, cursor, &out);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(cursor, 15);
  out.clear();
  EXPECT_EQ(egress.FetchSince(99, 0, &out), 0);
  EXPECT_TRUE(out.empty());
}

TEST(PullEgressTest, RetentionCap) {
  PullEgress egress({.max_per_query = 3});
  for (Timestamp t = 1; t <= 10; ++t) egress.Log(D(7, t, t));
  EXPECT_EQ(egress.LoggedCount(7), 3u);
  std::vector<Tuple> out;
  egress.FetchSince(7, 0, &out);
  EXPECT_EQ(out.front().timestamp(), 8);
}

}  // namespace
}  // namespace tcq
