// Query-class lifecycle tests: bridging-query merges (result-multiset
// equivalent to a single class built up front, pinned against the naive
// reference evaluator), garbage collection of empty classes (streams freed
// for re-ownership), DU migration across EOs (no lost or duplicated
// deliveries), and the unrouted-vs-backpressure drop accounting split.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "operators/predicate.h"
#include "reference/reference.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;
using testref::NaiveJoin;

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

CQSpec JoinSpec(SourceId l, const char* lf, SourceId r, const char* rf) {
  CQSpec spec;
  spec.joins.push_back({{l, lf}, {r, rf}});
  return spec;
}

CQSpec FilterSpec(SourceId s, int64_t lt_bound) {
  CQSpec spec;
  spec.filters.push_back({{s, "k"}, CmpOp::kLt, Value::Int64(lt_bound)});
  return spec;
}

/// Thread-safe per-query result collector.
class Collector {
 public:
  Executor::Sink SinkFor(const std::string& key) {
    return [this, key](GlobalQueryId, const Tuple& t) {
      std::lock_guard<std::mutex> lock(mu_);
      results_[key].push_back(t);
    };
  }
  size_t Count(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    return it == results_.end() ? 0 : it->second.size();
  }
  std::vector<Tuple> Take(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    return it == results_.end() ? std::vector<Tuple>{} : it->second;
  }
  bool WaitFor(const std::string& key, size_t n, int timeout_ms = 5000) const {
    for (int waited = 0; waited < timeout_ms; waited += 2) {
      if (Count(key) >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return Count(key) >= n;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Tuple>> results_;
};

// --- Merge: result-multiset equivalence ---------------------------------------

/// Drives one executor through the shared protocol: two join queries (q01
/// over streams 0-1, q23 over streams 2-3), a prefix of every stream, then
/// the bridging join (1.k = 2.k) mid-stream, then a suffix. The `preplant`
/// flag makes stream 1 and 2 share a class from the start (never-matching
/// join), so the bridge lands in an up-front single class instead of
/// triggering a merge.
struct MergeRun {
  Collector got;
  std::vector<Tuple> s1_prefix, s2_prefix, s1_all, s2_all;
  uint64_t merges = 0;
  size_t classes_after_bridge = 0;
};

void RunMergeProtocol(bool preplant, int P, int S, MergeRun* run) {
  Executor exec({.num_eos = 2, .quantum = 16});
  for (SourceId s = 0; s < 4; ++s) {
    ASSERT_TRUE(exec.RegisterStream(s, Sch(s)).ok());
  }
  if (preplant) {
    // v values are globally unique, so this join never emits; it only
    // forces streams 1 and 2 into one class up front.
    ASSERT_TRUE(
        exec.SubmitQuery(JoinSpec(1, "v", 2, "v"), run->got.SinkFor("none"))
            .ok());
  }
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), run->got.SinkFor("q01"))
          .ok());
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(2, "k", 3, "k"), run->got.SinkFor("q23"))
          .ok());
  ASSERT_EQ(exec.num_classes(), preplant ? 1u : 2u);
  exec.Start();

  Timestamp ts = 1;
  auto ingest = [&](int rows) {
    for (int i = 0; i < rows; ++i) {
      for (SourceId s = 0; s < 4; ++s) {
        Tuple t = Row(s, 1, static_cast<int64_t>(s) * 100000 + ts, ts);
        ASSERT_TRUE(exec.IngestTuple(s, t).ok());
        if (s == 1) run->s1_all.push_back(t);
        if (s == 2) run->s2_all.push_back(t);
        ++ts;
      }
    }
  };
  ingest(P);
  // Barrier: once q01 and q23 saw every prefix pair, every prefix tuple of
  // all four streams has been absorbed into its class's SteMs.
  ASSERT_TRUE(run->got.WaitFor("q01", static_cast<size_t>(P) * P));
  ASSERT_TRUE(run->got.WaitFor("q23", static_cast<size_t>(P) * P));
  run->s1_prefix = run->s1_all;
  run->s2_prefix = run->s2_all;

  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(1, "k", 2, "k"), run->got.SinkFor("bridge"))
          .ok());
  run->merges = exec.class_merges();
  run->classes_after_bridge = exec.num_classes();

  ingest(S);
  for (SourceId s = 0; s < 4; ++s) {
    ASSERT_TRUE(exec.CloseStream(s).ok());
  }
  size_t total = static_cast<size_t>(P + S) * (P + S);
  ASSERT_TRUE(run->got.WaitFor("q01", total));
  ASSERT_TRUE(run->got.WaitFor("q23", total));
  ASSERT_TRUE(
      run->got.WaitFor("bridge", total - static_cast<size_t>(P) * P));
  exec.Stop();
}

TEST(ExecLifecycleTest, BridgingMergeMatchesSingleClassUpFront) {
  constexpr int P = 6, S = 6;
  MergeRun merged, control;
  RunMergeProtocol(/*preplant=*/false, P, S, &merged);
  if (HasFatalFailure()) return;
  RunMergeProtocol(/*preplant=*/true, P, S, &control);
  if (HasFatalFailure()) return;

  EXPECT_EQ(merged.merges, 1u);
  EXPECT_EQ(merged.classes_after_bridge, 1u);
  EXPECT_EQ(control.merges, 0u);
  EXPECT_EQ(control.classes_after_bridge, 1u);

  // The merged run's result multisets are identical to the up-front single
  // class, for the bridge and for the pre-existing queries.
  for (const char* q : {"q01", "q23", "bridge"}) {
    EXPECT_EQ(CanonicalMultiset(merged.got.Take(q)),
              CanonicalMultiset(control.got.Take(q)))
        << "query " << q;
  }
  EXPECT_EQ(merged.got.Count("none"), 0u);
  EXPECT_EQ(control.got.Count("none"), 0u);

  // Pin the bridge against the naive reference: every 1x2 pair except those
  // whose later tuple predates the bridge's admission (= prefix x prefix).
  auto pred = MakeCompareAttrs({1, "k"}, CmpOp::kEq, {2, "k"});
  auto all_pairs =
      CanonicalMultiset(NaiveJoin({merged.s1_all, merged.s2_all}, {pred}));
  auto prefix_pairs = CanonicalMultiset(
      NaiveJoin({merged.s1_prefix, merged.s2_prefix}, {pred}));
  for (const auto& [key, count] : prefix_pairs) {
    all_pairs[key] -= count;
    if (all_pairs[key] == 0) all_pairs.erase(key);
  }
  EXPECT_EQ(CanonicalMultiset(merged.got.Take("bridge")), all_pairs);
}

TEST(ExecLifecycleTest, QueuedTuplesSurviveMerge) {
  // Tuples queued in the class fjords when the merge happens must neither
  // be lost nor duplicated: the consumer endpoints (with their queues)
  // move to the surviving DU.
  constexpr int K = 20;
  Executor exec({.num_eos = 2});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  Collector got;
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 100), got.SinkFor("f0")).ok());
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(1, 100), got.SinkFor("f1")).ok());
  ASSERT_EQ(exec.num_classes(), 2u);
  // Not started: these sit in the two classes' fjords.
  for (int i = 0; i < K; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, i, i + 1)).ok());
    ASSERT_TRUE(exec.IngestTuple(1, Row(1, 1, i, i + 1)).ok());
  }
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), got.SinkFor("bridge")).ok());
  EXPECT_EQ(exec.class_merges(), 1u);
  EXPECT_EQ(exec.num_classes(), 1u);

  exec.Start();
  ASSERT_TRUE(exec.CloseStream(0).ok());
  ASSERT_TRUE(exec.CloseStream(1).ok());
  ASSERT_TRUE(got.WaitFor("bridge", static_cast<size_t>(K) * K));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // no overshoot
  exec.Stop();
  // Exact counts: the bridge was admitted before any queued tuple was
  // processed, so every 0x1 pair joins exactly once; the filters see every
  // tuple exactly once.
  EXPECT_EQ(got.Count("f0"), static_cast<size_t>(K));
  EXPECT_EQ(got.Count("f1"), static_cast<size_t>(K));
  EXPECT_EQ(got.Count("bridge"), static_cast<size_t>(K) * K);
}

// --- GC: stream re-ownership ---------------------------------------------------

TEST(ExecLifecycleTest, GcFreesStreamsForReownership) {
  Executor exec({.num_eos = 1});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  Collector got;
  exec.Start();

  auto id1 = exec.SubmitQuery(FilterSpec(0, 100), got.SinkFor("gen1"));
  ASSERT_TRUE(id1.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, i, i + 1)).ok());
  }
  ASSERT_TRUE(got.WaitFor("gen1", 50));

  // Removing the class's only query retires the whole class...
  ASSERT_TRUE(exec.RemoveQuery(*id1).ok());
  EXPECT_EQ(exec.num_classes(), 0u);
  EXPECT_EQ(exec.class_gcs(), 1u);
  EXPECT_TRUE(exec.IngestTuple(0, Row(0, 1, 0, 60)).IsFailedPrecondition());

  // ...and frees the stream: a later query re-claims it with fresh fjords
  // and receives exactly its own tuples.
  auto id2 = exec.SubmitQuery(FilterSpec(0, 100), got.SinkFor("gen2"));
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(exec.num_classes(), 1u);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, i, 100 + i)).ok());
  }
  ASSERT_TRUE(got.WaitFor("gen2", 30));
  exec.Stop();
  EXPECT_EQ(got.Count("gen1"), 50u);
  EXPECT_EQ(got.Count("gen2"), 30u);
}

// --- Migration: no lost or duplicated deliveries -------------------------------

TEST(ExecLifecycleTest, MigrationLosesNoDeliveries) {
  // Three classes on two EOs: classes 0 and 2 land on eo0, class 1 on eo1.
  // Driving streams 0 and 2 only makes eo0 the hot EO, so a rebalance pass
  // must migrate its busiest DU to eo1 — while data is still flowing.
  constexpr int kPhase1 = 500, kPhase2 = 500;
  Executor exec({.num_eos = 2, .quantum = 16});
  Collector got;
  std::vector<GlobalQueryId> ids;
  for (SourceId s = 0; s < 3; ++s) {
    ASSERT_TRUE(exec.RegisterStream(s, Sch(s)).ok());
    auto id = exec.SubmitQuery(FilterSpec(s, 100),
                               got.SinkFor("q" + std::to_string(s)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_EQ(exec.num_classes(), 3u);
  exec.Start();

  Timestamp ts = 1;
  for (int i = 0; i < kPhase1; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, i, ts)).ok());
    ASSERT_TRUE(exec.IngestTuple(2, Row(2, 1, i, ts)).ok());
    ++ts;
  }
  ASSERT_TRUE(got.WaitFor("q0", kPhase1));
  ASSERT_TRUE(got.WaitFor("q2", kPhase1));
  // eo0's progress dwarfs eo1's; one pass must move a DU.
  EXPECT_TRUE(exec.RebalanceOnce());
  EXPECT_EQ(exec.class_migrations(), 1u);
  std::map<size_t, int> per_eo;
  for (const auto& info : exec.Topology()) ++per_eo[info.eo];
  EXPECT_EQ(per_eo[0], 1);
  EXPECT_EQ(per_eo[1], 2);

  // The migrated DU keeps consuming: stream data continues on all three
  // streams and every delivery arrives exactly once.
  for (int i = 0; i < kPhase2; ++i) {
    for (SourceId s = 0; s < 3; ++s) {
      ASSERT_TRUE(exec.IngestTuple(s, Row(s, 1, i, ts)).ok());
    }
    ++ts;
    if (i % 100 == 0) (void)exec.RebalanceOnce();  // passes stay safe mid-flow
  }
  for (SourceId s = 0; s < 3; ++s) {
    ASSERT_TRUE(exec.CloseStream(s).ok());
  }
  ASSERT_TRUE(got.WaitFor("q0", kPhase1 + kPhase2));
  ASSERT_TRUE(got.WaitFor("q1", kPhase2));
  ASSERT_TRUE(got.WaitFor("q2", kPhase1 + kPhase2));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // no overshoot
  exec.Stop();
  EXPECT_EQ(got.Count("q0"), static_cast<size_t>(kPhase1 + kPhase2));
  EXPECT_EQ(got.Count("q1"), static_cast<size_t>(kPhase2));
  EXPECT_EQ(got.Count("q2"), static_cast<size_t>(kPhase1 + kPhase2));
}

// --- Drop accounting: unrouted vs back-pressure --------------------------------

TEST(ExecLifecycleTest, BackpressureDropsCountSeparately) {
  // Regression: back-pressure drops (a consumer exists but its fjord is
  // full past the retry budget) were counted as "unrouted" — masking
  // whether drops meant a missing query or an overloaded one.
  Executor exec({.num_eos = 1, .queue_capacity = 4});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  Collector got;
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 100), got.SinkFor("q")).ok());
  // Not started: nothing drains stream 0's 4-slot fjord.
  TupleBatch big(0);
  for (int i = 0; i < 20; ++i) big.push_back(Row(0, 1, i, i + 1));
  EXPECT_TRUE(exec.IngestBatch(std::move(big)).IsResourceExhausted());
  EXPECT_EQ(exec.tuples_dropped_backpressure(), 16u);  // 4 of 20 fit
  EXPECT_EQ(exec.tuples_dropped_unrouted(), 0u);
  EXPECT_EQ(exec.stream_tuples_dropped(0), 16u);

  // Unrouted drops (no class consumes the stream) stay on their own counter.
  TupleBatch orphan(1);
  for (int i = 0; i < 10; ++i) orphan.push_back(Row(1, 1, i, i + 1));
  EXPECT_TRUE(exec.IngestBatch(std::move(orphan)).IsFailedPrecondition());
  EXPECT_EQ(exec.tuples_dropped_unrouted(), 10u);
  EXPECT_EQ(exec.tuples_dropped_backpressure(), 16u);
  EXPECT_EQ(exec.stream_tuples_dropped(1), 10u);
}

}  // namespace
}  // namespace tcq
