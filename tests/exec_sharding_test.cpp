// Flux-sharded query-class tests: a class partitioned across N shard
// replicas must produce the same result multiset as the single-shard class
// (pinned against the naive reference evaluator), including across an
// online skew re-partition; keyless classes round-robin across shards;
// conflicting partition-key requirements collapse the class to one shard;
// and bridging merges still work when both classes are sharded.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "operators/predicate.h"
#include "reference/reference.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;
using testref::NaiveFilter;
using testref::NaiveJoin;

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

CQSpec JoinSpec(SourceId l, const char* lf, SourceId r, const char* rf) {
  CQSpec spec;
  spec.joins.push_back({{l, lf}, {r, rf}});
  return spec;
}

CQSpec FilterSpec(SourceId s, int64_t lt_bound) {
  CQSpec spec;
  spec.filters.push_back({{s, "v"}, CmpOp::kLt, Value::Int64(lt_bound)});
  return spec;
}

/// Thread-safe per-query result collector.
class Collector {
 public:
  Executor::Sink SinkFor(const std::string& key) {
    return [this, key](GlobalQueryId, const Tuple& t) {
      std::lock_guard<std::mutex> lock(mu_);
      results_[key].push_back(t);
    };
  }
  size_t Count(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    return it == results_.end() ? 0 : it->second.size();
  }
  std::vector<Tuple> Take(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    return it == results_.end() ? std::vector<Tuple>{} : it->second;
  }
  bool WaitFor(const std::string& key, size_t n, int timeout_ms = 10000) const {
    for (int waited = 0; waited < timeout_ms; waited += 2) {
      if (Count(key) >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return Count(key) >= n;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Tuple>> results_;
};

/// Runs a join (0.k = 1.k) plus a filter query over the same two streams on
/// an executor with `shards` replicas per class; returns per-query results.
struct ShardRun {
  Collector got;
  std::vector<Tuple> s0, s1;
  size_t shards_reported = 0;
};

void RunJoinWorkload(size_t shards, int rows, int64_t key_range,
                     ShardRun* run) {
  Executor exec({.num_eos = 2, .quantum = 16, .shards = shards});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), run->got.SinkFor("join"))
          .ok());
  ASSERT_TRUE(
      exec.SubmitQuery(FilterSpec(0, 50), run->got.SinkFor("filter")).ok());
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  run->shards_reported = topo[0].shards;
  exec.Start();

  Rng rng(17);
  Timestamp ts = 1;
  for (int i = 0; i < rows; ++i) {
    Tuple a = Row(0, rng.UniformInt(0, key_range - 1),
                  rng.UniformInt(0, 99), ts++);
    Tuple b = Row(1, rng.UniformInt(0, key_range - 1),
                  rng.UniformInt(0, 99), ts++);
    run->s0.push_back(a);
    run->s1.push_back(b);
    ASSERT_TRUE(exec.IngestTuple(0, a).ok());
    ASSERT_TRUE(exec.IngestTuple(1, b).ok());
  }
  ASSERT_TRUE(exec.CloseStream(0).ok());
  ASSERT_TRUE(exec.CloseStream(1).ok());

  auto join_pred = MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"});
  size_t expect_join = NaiveJoin({run->s0, run->s1}, {join_pred}).size();
  size_t expect_filter =
      NaiveFilter(run->s0,
                  {MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(50))})
          .size();
  ASSERT_TRUE(run->got.WaitFor("join", expect_join));
  ASSERT_TRUE(run->got.WaitFor("filter", expect_filter));
  exec.Stop();
}

TEST(ExecShardingTest, ShardedJoinMatchesSingleShardAndReference) {
  constexpr int kRows = 400;
  constexpr int64_t kKeys = 37;
  ShardRun sharded, single;
  RunJoinWorkload(4, kRows, kKeys, &sharded);
  if (HasFatalFailure()) return;
  RunJoinWorkload(1, kRows, kKeys, &single);
  if (HasFatalFailure()) return;

  EXPECT_EQ(sharded.shards_reported, 4u);
  EXPECT_EQ(single.shards_reported, 1u);

  // Same seeded workload on both runs.
  ASSERT_EQ(CanonicalMultiset(sharded.s0), CanonicalMultiset(single.s0));

  // Sharded == single-shard == naive reference, as multisets.
  auto join_pred = MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"});
  auto expected =
      CanonicalMultiset(NaiveJoin({sharded.s0, sharded.s1}, {join_pred}));
  EXPECT_EQ(CanonicalMultiset(sharded.got.Take("join")), expected);
  EXPECT_EQ(CanonicalMultiset(single.got.Take("join")), expected);
  EXPECT_EQ(CanonicalMultiset(sharded.got.Take("filter")),
            CanonicalMultiset(single.got.Take("filter")));
}

TEST(ExecShardingTest, EquivalenceHoldsAcrossOnlineRepartition) {
  // A hot key skews every tuple into one shard; after the skew check
  // triggers an online re-partition (moving buckets AND stored SteM state),
  // the remaining uniform suffix must still join exactly per the reference
  // — across the repartition boundary too (prefix x suffix pairs).
  constexpr int kHot = 300, kRest = 300;
  Executor exec({.num_eos = 2,
                 .quantum = 16,
                 .shards = 4,
                 .shard_min_skew_volume = 64});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  Collector got;
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), got.SinkFor("join")).ok());
  exec.Start();

  std::vector<Tuple> s0, s1;
  Timestamp ts = 1;
  auto ingest = [&](SourceId s, int64_t k, std::vector<Tuple>* log) {
    Tuple t = Row(s, k, static_cast<int64_t>(ts), ts);
    ++ts;
    log->push_back(t);
    ASSERT_TRUE(exec.IngestTuple(s, t).ok());
  };
  for (int i = 0; i < kHot; ++i) {
    ingest(0, 7, &s0);
    ingest(1, 7, &s1);
  }
  // The hot prefix has all landed in one shard; force the skew pass.
  auto join_pred = MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"});
  ASSERT_TRUE(got.WaitFor("join", NaiveJoin({s0, s1}, {join_pred}).size()));
  EXPECT_TRUE(exec.RepartitionSkewedOnce());
  EXPECT_GE(exec.class_repartitions(), 1u);

  Rng rng(29);
  for (int i = 0; i < kRest; ++i) {
    ingest(0, rng.UniformInt(0, 30), &s0);
    ingest(1, rng.UniformInt(0, 30), &s1);
  }
  ASSERT_TRUE(exec.CloseStream(0).ok());
  ASSERT_TRUE(exec.CloseStream(1).ok());

  auto expected = CanonicalMultiset(NaiveJoin({s0, s1}, {join_pred}));
  size_t total = 0;
  for (const auto& [key, count] : expected) total += count;
  ASSERT_TRUE(got.WaitFor("join", total));
  exec.Stop();
  EXPECT_EQ(CanonicalMultiset(got.Take("join")), expected);
}

TEST(ExecShardingTest, KeylessClassRoundRobinsAcrossShards) {
  // Filter-only queries have no join edge: the class still fans out, with
  // per-tuple round-robin routing (trivially multiset-correct).
  constexpr int kRows = 512;
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 4});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  Collector got;
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 50), got.SinkFor("f")).ok());
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo[0].shards, 4u);
  exec.Start();

  std::vector<Tuple> s0;
  Rng rng(31);
  for (int i = 0; i < kRows; ++i) {
    Tuple t = Row(0, rng.UniformInt(0, 9), rng.UniformInt(0, 99),
                  static_cast<Timestamp>(i + 1));
    s0.push_back(t);
    ASSERT_TRUE(exec.IngestTuple(0, t).ok());
  }
  ASSERT_TRUE(exec.CloseStream(0).ok());

  auto expected = CanonicalMultiset(NaiveFilter(
      s0, {MakeCompareConst({0, "v"}, CmpOp::kLt, Value::Int64(50))}));
  size_t total = 0;
  for (const auto& [key, count] : expected) total += count;
  ASSERT_TRUE(got.WaitFor("f", total));
  exec.Stop();
  EXPECT_EQ(CanonicalMultiset(got.Take("f")), expected);

  // Round-robin spread: every shard ingested a fair share.
  auto snap = exec.metrics()->Snapshot();
  uint64_t shard0 =
      snap.CounterValue("tcq_shard_ingest_total{shard=\"class0\"}");
  EXPECT_GT(shard0, 0u);
  for (int k = 1; k < 4; ++k) {
    uint64_t n = snap.CounterValue("tcq_shard_ingest_total{shard=\"class0/s" +
                                   std::to_string(k) + "\"}");
    EXPECT_EQ(n, kRows / 4u) << "shard " << k;
  }
}

TEST(ExecShardingTest, ConflictingJoinKeysCollapseToOneShard) {
  // s1 is joined on "k" by one edge and on "v" by another: no single
  // partition key co-partitions both, so the class must run one shard
  // (parallelism is given up, correctness is kept).
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 4});
  for (SourceId s = 0; s < 3; ++s) {
    ASSERT_TRUE(exec.RegisterStream(s, Sch(s)).ok());
  }
  Collector got;
  CQSpec chain;
  chain.joins.push_back({{0, "k"}, {1, "k"}});
  chain.joins.push_back({{1, "v"}, {2, "k"}});
  ASSERT_TRUE(exec.SubmitQuery(chain, got.SinkFor("chain")).ok());
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo[0].shards, 1u);
  exec.Start();

  std::vector<Tuple> s0, s1, s2;
  Timestamp ts = 1;
  Rng rng(41);
  for (int i = 0; i < 60; ++i) {
    Tuple a = Row(0, rng.UniformInt(0, 5), 0, ts++);
    Tuple b = Row(1, rng.UniformInt(0, 5), rng.UniformInt(0, 5), ts++);
    Tuple c = Row(2, rng.UniformInt(0, 5), 0, ts++);
    s0.push_back(a);
    s1.push_back(b);
    s2.push_back(c);
    ASSERT_TRUE(exec.IngestTuple(0, a).ok());
    ASSERT_TRUE(exec.IngestTuple(1, b).ok());
    ASSERT_TRUE(exec.IngestTuple(2, c).ok());
  }
  for (SourceId s = 0; s < 3; ++s) ASSERT_TRUE(exec.CloseStream(s).ok());

  auto expected = CanonicalMultiset(NaiveJoin(
      {s0, s1, s2}, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
                     MakeCompareAttrs({1, "v"}, CmpOp::kEq, {2, "k"})}));
  size_t total = 0;
  for (const auto& [key, count] : expected) total += count;
  ASSERT_TRUE(got.WaitFor("chain", total));
  exec.Stop();
  EXPECT_EQ(CanonicalMultiset(got.Take("chain")), expected);
}

TEST(ExecShardingTest, BridgingMergeWorksAcrossShardedClasses) {
  // Two sharded classes (join 0-1 and join 2-3) merged by a bridging query
  // (1.k = 2.k): the merge collapses both to one shard, absorbs, and the
  // bridging admission re-expands the survivor. No deliveries lost.
  constexpr int P = 6, S = 6;
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 2});
  for (SourceId s = 0; s < 4; ++s) {
    ASSERT_TRUE(exec.RegisterStream(s, Sch(s)).ok());
  }
  Collector got;
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), got.SinkFor("q01")).ok());
  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(2, "k", 3, "k"), got.SinkFor("q23")).ok());
  ASSERT_EQ(exec.num_classes(), 2u);
  exec.Start();

  std::vector<Tuple> s1_all, s2_all, s1_prefix, s2_prefix;
  Timestamp ts = 1;
  auto ingest = [&](int rows) {
    for (int i = 0; i < rows; ++i) {
      for (SourceId s = 0; s < 4; ++s) {
        Tuple t = Row(s, 1, static_cast<int64_t>(s) * 100000 + ts, ts);
        ASSERT_TRUE(exec.IngestTuple(s, t).ok());
        if (s == 1) s1_all.push_back(t);
        if (s == 2) s2_all.push_back(t);
        ++ts;
      }
    }
  };
  ingest(P);
  ASSERT_TRUE(got.WaitFor("q01", static_cast<size_t>(P) * P));
  ASSERT_TRUE(got.WaitFor("q23", static_cast<size_t>(P) * P));
  s1_prefix = s1_all;
  s2_prefix = s2_all;

  ASSERT_TRUE(
      exec.SubmitQuery(JoinSpec(1, "k", 2, "k"), got.SinkFor("bridge")).ok());
  EXPECT_EQ(exec.class_merges(), 1u);
  ASSERT_EQ(exec.num_classes(), 1u);
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo[0].shards, 2u);  // re-expanded after the merge

  ingest(S);
  for (SourceId s = 0; s < 4; ++s) ASSERT_TRUE(exec.CloseStream(s).ok());
  size_t total = static_cast<size_t>(P + S) * (P + S);
  ASSERT_TRUE(got.WaitFor("q01", total));
  ASSERT_TRUE(got.WaitFor("q23", total));
  ASSERT_TRUE(got.WaitFor("bridge", total - static_cast<size_t>(P) * P));
  exec.Stop();

  // The bridge sees every 1x2 pair except prefix x prefix (both sides
  // ingested before its admission).
  auto pred = MakeCompareAttrs({1, "k"}, CmpOp::kEq, {2, "k"});
  auto all_pairs = CanonicalMultiset(NaiveJoin({s1_all, s2_all}, {pred}));
  auto prefix_pairs =
      CanonicalMultiset(NaiveJoin({s1_prefix, s2_prefix}, {pred}));
  for (const auto& [key, count] : prefix_pairs) {
    all_pairs[key] -= count;
    if (all_pairs[key] == 0) all_pairs.erase(key);
  }
  EXPECT_EQ(CanonicalMultiset(got.Take("bridge")), all_pairs);
}

TEST(ExecShardingTest, ShardMetricsAndGcLifecycle) {
  // The tcq_shard_* family reports shard count and per-shard ingest; GC of
  // a sharded class releases its streams for re-ownership.
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 2});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  Collector got;
  auto q = exec.SubmitQuery(JoinSpec(0, "k", 1, "k"), got.SinkFor("j"));
  ASSERT_TRUE(q.ok());
  exec.Start();

  ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, 1, 1)).ok());
  ASSERT_TRUE(exec.IngestTuple(1, Row(1, 1, 2, 2)).ok());
  ASSERT_TRUE(got.WaitFor("j", 1));

  auto snap = exec.metrics()->Snapshot();
  EXPECT_EQ(snap.GaugeValue("tcq_shard_count{class=\"class0\"}"), 2);
  EXPECT_EQ(snap.CounterFamilySum("tcq_shard_ingest_total"), 2u);

  ASSERT_TRUE(exec.RemoveQuery(*q).ok());
  EXPECT_EQ(exec.class_gcs(), 1u);
  EXPECT_EQ(exec.num_classes(), 0u);

  // Streams are re-claimable after GC.
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 100), got.SinkFor("f")).ok());
  ASSERT_TRUE(exec.IngestTuple(0, Row(0, 2, 3, 3)).ok());
  ASSERT_TRUE(got.WaitFor("f", 1));
  exec.Stop();
}

// A punctuation ingested on a sharded class's stream is broadcast to every
// shard replica; the class-level watermark only advances once ALL shards
// have applied it (min-combine), and exactly one merged punctuation tuple
// reaches each member query's sink.
TEST(ShardingTest, PunctuationBroadcastMinCombinesAcrossShards) {
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 4});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  Collector got;
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 1000), got.SinkFor("f")).ok());
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  ASSERT_EQ(topo[0].shards, 4u);
  exec.Start();

  EXPECT_EQ(exec.stream_watermark(0), kMinTimestamp);
  EXPECT_EQ(exec.stream_watermark(7), kMinTimestamp);  // unknown stream

  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, i, i, i + 1)).ok());
  }
  ASSERT_TRUE(exec.IngestTuple(0, Tuple::MakePunctuation(0, 30)).ok());

  // All 32 rows pass the filter, plus the merged punctuation = 33.
  ASSERT_TRUE(got.WaitFor("f", 33));
  EXPECT_EQ(exec.stream_watermark(0), 30);

  size_t puncts = 0;
  for (const Tuple& t : got.Take("f")) {
    if (!t.IsPunctuation()) continue;
    ++puncts;
    Punctuation p = t.AsPunctuation();
    EXPECT_EQ(p.source, 0u);
    EXPECT_EQ(p.low_watermark, 30);
  }
  // Broadcast to 4 shards, min-combined back to exactly ONE delivery.
  EXPECT_EQ(puncts, 1u);
  exec.Stop();
}

// Duplicate and regressed punctuations neither move the merged watermark
// nor produce extra control deliveries; a genuine advance does both.
TEST(ShardingTest, DuplicateAndRegressedPunctuationsAreIdempotent) {
  Executor exec({.num_eos = 2, .quantum = 16, .shards = 4});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  Collector got;
  ASSERT_TRUE(exec.SubmitQuery(FilterSpec(0, 1000), got.SinkFor("f")).ok());
  exec.Start();

  ASSERT_TRUE(exec.IngestTuple(0, Tuple::MakePunctuation(0, 10)).ok());
  ASSERT_TRUE(got.WaitFor("f", 1));
  EXPECT_EQ(exec.stream_watermark(0), 10);

  // Duplicate (wm=10) and regression (wm=5): both rejected at every shard.
  ASSERT_TRUE(exec.IngestTuple(0, Tuple::MakePunctuation(0, 10)).ok());
  ASSERT_TRUE(exec.IngestTuple(0, Tuple::MakePunctuation(0, 5)).ok());
  // A later genuine advance flushes past the rejected ones; its arrival at
  // the sink proves the rejects were fully processed (same ordered path).
  ASSERT_TRUE(exec.IngestTuple(0, Tuple::MakePunctuation(0, 20)).ok());
  ASSERT_TRUE(got.WaitFor("f", 2));
  EXPECT_EQ(exec.stream_watermark(0), 20);

  std::vector<Timestamp> wms;
  for (const Tuple& t : got.Take("f")) {
    ASSERT_TRUE(t.IsPunctuation());
    wms.push_back(t.AsPunctuation().low_watermark);
  }
  EXPECT_EQ(wms, (std::vector<Timestamp>{10, 20}));
  exec.Stop();
}

}  // namespace
}  // namespace tcq
