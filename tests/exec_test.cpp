// Executor tests: DU state machines, EO scheduling, query-class formation by
// footprint, dynamic admission through the plan queue, and end-to-end
// multithreaded runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/scheduler.h"

namespace tcq {
namespace {

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

// --- Schedulers ---------------------------------------------------------------

TEST(SchedulerTest, RoundRobinSkipsDone) {
  RoundRobinScheduler sched;
  std::vector<DuSchedInfo> dus(3);
  dus[1].done = true;
  EXPECT_EQ(sched.PickNext(dus), 0u);
  EXPECT_EQ(sched.PickNext(dus), 2u);
  EXPECT_EQ(sched.PickNext(dus), 0u);
  dus[0].done = dus[2].done = true;
  EXPECT_EQ(sched.PickNext(dus), SIZE_MAX);
}

TEST(SchedulerTest, RoundRobinStaysFairWhenDuSetGrows) {
  // Regression: the cursor was stored un-wrapped (cand + 1), so after
  // serving a 1-DU set it pointed past that DU; once the set grew, the
  // rotation resumed from the wrong slot and skipped DU 0.
  RoundRobinScheduler sched;
  std::vector<DuSchedInfo> dus(1);
  EXPECT_EQ(sched.PickNext(dus), 0u);
  dus.resize(3);
  EXPECT_EQ(sched.PickNext(dus), 0u);  // wrapped cursor: rotation continues
  EXPECT_EQ(sched.PickNext(dus), 1u);
  EXPECT_EQ(sched.PickNext(dus), 2u);
  EXPECT_EQ(sched.PickNext(dus), 0u);
}

TEST(SchedulerTest, TicketNeverStarvesZeroProgressDu) {
  // Starvation regression: a DU whose recent_progress decayed to exactly 0
  // must still be drawn within a bounded number of picks — the 0.05 ticket
  // floor gives it ~0.05/3.20 of the draws here (expected gap ~64).
  TicketScheduler sched(42);
  std::vector<DuSchedInfo> dus(4);
  for (size_t i = 0; i + 1 < dus.size(); ++i) dus[i].recent_progress = 1.0;
  dus.back().recent_progress = 0.0;  // the starvation candidate

  int gap = 0;
  int max_gap = 0;
  for (int i = 0; i < 20000; ++i) {
    size_t pick = sched.PickNext(dus);
    ASSERT_LT(pick, dus.size());
    if (pick == dus.size() - 1) {
      gap = 0;
    } else {
      max_gap = std::max(max_gap, ++gap);
    }
  }
  // A generous bound (~30x the expected gap) that only a zero-weight
  // starvation bug would exceed with this seed.
  EXPECT_LT(max_gap, 2000);
}

TEST(SchedulerTest, TicketFavoursProgress) {
  TicketScheduler sched(7);
  std::vector<DuSchedInfo> dus(2);
  dus[0].recent_progress = 1.0;
  dus[1].recent_progress = 0.0;
  int first = 0;
  for (int i = 0; i < 1000; ++i) {
    if (sched.PickNext(dus) == 0u) ++first;
  }
  EXPECT_GT(first, 700);
  EXPECT_GT(1000 - first, 10);  // idle DU still polled
}

// --- DUs over fjords -----------------------------------------------------------

TEST(DispatchUnitTest, SharedCQConsumesAndCompletes) {
  auto eddy = std::make_unique<SharedEddy>(MakeLotteryPolicy(1));
  eddy->RegisterStream(0, Sch(0));
  SharedCQDispatchUnit du("du0", std::move(eddy), {.quantum = 8});

  auto endpoints = Fjord::Make(FjordMode::kPush, 256);
  du.AddInput(0, endpoints.consumer);

  std::atomic<size_t> delivered{0};
  du.SubmitTask([&](SharedEddy* e) {
    e->SetOutput([&](QueryId, const Tuple&) { ++delivered; });
    CQSpec spec;
    spec.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(50)});
    ASSERT_TRUE(e->AddQuery(spec).ok());
  });

  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(endpoints.producer.Produce(Row(0, i % 100, 0, i)), QueueOp::kOk);
  }
  // Queue not closed: DU progresses then idles.
  DispatchUnit::StepResult r = du.Step();
  EXPECT_EQ(r, DispatchUnit::StepResult::kProgress);
  while (du.Step() == DispatchUnit::StepResult::kProgress) {
  }
  EXPECT_EQ(du.Step(), DispatchUnit::StepResult::kIdle);
  endpoints.producer.Close();
  EXPECT_EQ(du.Step(), DispatchUnit::StepResult::kDone);
  EXPECT_EQ(delivered.load(), 50u);
}

TEST(DispatchUnitTest, WindowedQueryFiresThroughDU) {
  WindowedQuery wq;
  wq.loop = ForLoopSpec::Sliding({0}, 5, 5, 20);
  std::vector<WindowResult> fired;
  WindowedQueryDispatchUnit du(
      "win", wq, [&](const WindowResult& r) { fired.push_back(r); }, 8);
  auto endpoints = Fjord::Make(FjordMode::kPush, 64);
  du.AddInput(0, endpoints.consumer);

  for (Timestamp t = 1; t <= 12; ++t) {
    ASSERT_EQ(endpoints.producer.Produce(Row(0, 1, 2, t)), QueueOp::kOk);
  }
  while (du.Step() == DispatchUnit::StepResult::kProgress) {
  }
  EXPECT_EQ(fired.size(), 8u);  // windows ending 5..12
  endpoints.producer.Close();
  while (du.Step() != DispatchUnit::StepResult::kDone) {
  }
  EXPECT_EQ(fired.size(), 16u);  // remaining windows fire at end of stream
  EXPECT_EQ(fired[7].tuples.size(), 5u);   // window [8, 12] is full
  EXPECT_EQ(fired.back().tuples.size(), 0u);  // [16, 20] is past the data
}

// --- ExecutionObject ------------------------------------------------------------

class CountdownDU : public DispatchUnit {
 public:
  CountdownDU(std::string name, int quanta, std::atomic<int>* counter)
      : DispatchUnit(std::move(name)), remaining_(quanta), counter_(counter) {}

  StepResult Step() override {
    if (remaining_ <= 0) {
      CountStep(StepResult::kDone);
      return StepResult::kDone;
    }
    --remaining_;
    counter_->fetch_add(1);
    StepResult r =
        remaining_ == 0 ? StepResult::kDone : StepResult::kProgress;
    CountStep(r);
    return r;
  }

 private:
  int remaining_;
  std::atomic<int>* counter_;
};

TEST(ExecutionObjectTest, RunsAllDusToCompletion) {
  ExecutionObject eo("eo", MakeRoundRobinScheduler());
  std::atomic<int> counter{0};
  eo.AddDispatchUnit(std::make_shared<CountdownDU>("a", 50, &counter));
  eo.AddDispatchUnit(std::make_shared<CountdownDU>("b", 70, &counter));
  eo.Start();
  eo.Join();
  EXPECT_EQ(counter.load(), 120);
  EXPECT_GE(eo.quanta_run(), 120u);
}

// --- Executor (query classes, admission, end to end) ----------------------------

TEST(ExecutorTest, DisjointFootprintsGetSeparateClasses) {
  Executor exec({.num_eos = 2});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());

  CQSpec q0;
  q0.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(5)});
  CQSpec q1;
  q1.filters.push_back({{1, "k"}, CmpOp::kLt, Value::Int64(5)});
  auto id0 = exec.SubmitQuery(q0, [](GlobalQueryId, const Tuple&) {});
  auto id1 = exec.SubmitQuery(q1, [](GlobalQueryId, const Tuple&) {});
  ASSERT_TRUE(id0.ok() && id1.ok());
  EXPECT_NE(*id0, *id1);
  EXPECT_EQ(exec.num_classes(), 2u);

  // A third query over stream 0 joins the existing class.
  CQSpec q2;
  q2.filters.push_back({{0, "v"}, CmpOp::kGe, Value::Int64(1)});
  ASSERT_TRUE(exec.SubmitQuery(q2, [](GlobalQueryId, const Tuple&) {}).ok());
  EXPECT_EQ(exec.num_classes(), 2u);
}

TEST(ExecutorTest, BridgingQueryMergesClasses) {
  Executor exec;
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());
  CQSpec q0;
  q0.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(5)});
  CQSpec q1;
  q1.filters.push_back({{1, "k"}, CmpOp::kLt, Value::Int64(5)});
  ASSERT_TRUE(exec.SubmitQuery(q0, [](GlobalQueryId, const Tuple&) {}).ok());
  ASSERT_TRUE(exec.SubmitQuery(q1, [](GlobalQueryId, const Tuple&) {}).ok());
  EXPECT_EQ(exec.num_classes(), 2u);

  // A join bridging both classes merges them instead of being rejected
  // (closing the paper's §4.2.2 "class re-adjustment" open issue).
  CQSpec bridge;
  bridge.joins.push_back({{0, "k"}, {1, "k"}});
  std::atomic<size_t> joined{0};
  auto r = exec.SubmitQuery(
      bridge, [&](GlobalQueryId, const Tuple&) { ++joined; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(exec.num_classes(), 1u);
  EXPECT_EQ(exec.class_merges(), 1u);
  auto topo = exec.Topology();
  ASSERT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo[0].streams, SourceBit(0) | SourceBit(1));
  EXPECT_EQ(topo[0].num_queries, 3u);

  // The merged class actually executes the bridging join.
  exec.Start();
  ASSERT_TRUE(exec.IngestTuple(0, Row(0, 7, 0, 1)).ok());
  ASSERT_TRUE(exec.IngestTuple(1, Row(1, 7, 0, 2)).ok());
  ASSERT_TRUE(exec.CloseStream(0).ok());
  ASSERT_TRUE(exec.CloseStream(1).ok());
  for (int i = 0; i < 500 && joined.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  exec.Stop();
  EXPECT_EQ(joined.load(), 1u);
}

TEST(ExecutorTest, UnknownStreamRejected) {
  Executor exec;
  CQSpec q;
  q.filters.push_back({{3, "k"}, CmpOp::kLt, Value::Int64(5)});
  EXPECT_TRUE(
      exec.SubmitQuery(q, [](GlobalQueryId, const Tuple&) {}).status()
          .IsNotFound());
  CQSpec empty;
  EXPECT_TRUE(exec.SubmitQuery(empty, [](GlobalQueryId, const Tuple&) {})
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorTest, EndToEndMultithreaded) {
  Executor exec({.num_eos = 2, .quantum = 32});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  ASSERT_TRUE(exec.RegisterStream(1, Sch(1)).ok());

  std::atomic<size_t> got0{0}, got1{0};
  CQSpec q0;
  q0.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(50)});
  CQSpec q1;
  q1.joins.push_back({{1, "k"}, {1, "k"}});  // degenerate: same source? no —
  // use a filter for stream 1 instead.
  q1 = CQSpec{};
  q1.filters.push_back({{1, "v"}, CmpOp::kGe, Value::Int64(50)});

  auto id0 = exec.SubmitQuery(
      q0, [&](GlobalQueryId, const Tuple&) { ++got0; });
  auto id1 = exec.SubmitQuery(
      q1, [&](GlobalQueryId, const Tuple&) { ++got1; });
  ASSERT_TRUE(id0.ok() && id1.ok());
  exec.Start();

  Rng rng(3);
  size_t expect0 = 0, expect1 = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t k = rng.UniformInt(0, 99), v = rng.UniformInt(0, 99);
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, k, v, i)).ok());
    ASSERT_TRUE(exec.IngestTuple(1, Row(1, k, v, i)).ok());
    if (k < 50) ++expect0;
    if (v >= 50) ++expect1;
  }
  ASSERT_TRUE(exec.CloseStream(0).ok());
  ASSERT_TRUE(exec.CloseStream(1).ok());
  // Wait for drain.
  for (int i = 0; i < 500; ++i) {
    if (got0 == expect0 && got1 == expect1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  exec.Stop();
  EXPECT_EQ(got0.load(), expect0);
  EXPECT_EQ(got1.load(), expect1);
}

TEST(ExecutorTest, RemoveQueryStopsDeliveries) {
  Executor exec({.num_eos = 1});
  ASSERT_TRUE(exec.RegisterStream(0, Sch(0)).ok());
  std::atomic<size_t> got{0};
  CQSpec q;
  q.filters.push_back({{0, "k"}, CmpOp::kGe, Value::Int64(0)});
  auto id = exec.SubmitQuery(q, [&](GlobalQueryId, const Tuple&) { ++got; });
  ASSERT_TRUE(id.ok());
  exec.Start();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(exec.IngestTuple(0, Row(0, 1, 1, i)).ok());
  }
  for (int i = 0; i < 200 && got.load() < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(got.load(), 100u);
  // Removing the class's last query GCs the whole class: the stream is no
  // longer consumed, so further ingest is refused (and counted) rather than
  // silently buffered for nobody.
  ASSERT_TRUE(exec.RemoveQuery(*id).ok());
  EXPECT_EQ(exec.num_classes(), 0u);
  EXPECT_EQ(exec.class_gcs(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        exec.IngestTuple(0, Row(0, 1, 1, 100 + i)).IsFailedPrecondition());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  exec.Stop();
  EXPECT_EQ(got.load(), 100u);
  EXPECT_TRUE(exec.RemoveQuery(*id).IsNotFound());
}

}  // namespace
}  // namespace tcq
