// Tests for the Fjords inter-module communication layer: queue semantics
// (push vs pull vs exchange), close/drain behaviour, and non-blocking
// guarantees under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/metrics.h"
#include "fjords/fjord.h"
#include "fjords/queue.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

SchemaRef OneIntSchema() {
  return Schema::Make({{"v", ValueType::kInt64, 0}});
}

Tuple IntTuple(int64_t v) {
  return Tuple::Make(OneIntSchema(), {Value::Int64(v)}, v);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kOk);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, TryEnqueueFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(3), QueueOp::kWouldBlock);
  EXPECT_EQ(q.enqueue_blocked_count(), 1u);
}

TEST(BoundedQueueTest, TryDequeueFailsWhenEmpty) {
  BoundedQueue<int> q(2);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kWouldBlock);
  EXPECT_EQ(q.dequeue_blocked_count(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsThenReportsClosed) {
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kClosed);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);  // pending item still there
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kClosed);
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedQueueTest, BlockingHandoffAcrossThreads) {
  BoundedQueue<int> q(1);
  std::atomic<int> sum{0};
  std::thread consumer([&] {
    int v;
    while (q.DequeueBlocking(&v)) sum += v;
  });
  for (int i = 1; i <= 100; ++i) ASSERT_TRUE(q.EnqueueBlocking(i));
  q.Close();
  consumer.join();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.DequeueBlocking(&v));
  });
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  std::thread producer([&] { EXPECT_FALSE(q.EnqueueBlocking(2)); });
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, CountsItemsDroppedOnClose) {
  // Regression: enqueueing into a closed queue silently destroyed the item
  // with no trace. The loss is now counted.
  BoundedQueue<int> q(2);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  q.Close();
  EXPECT_EQ(q.dropped_on_close_count(), 0u);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kClosed);
  EXPECT_EQ(q.dropped_on_close_count(), 1u);
  EXPECT_FALSE(q.EnqueueBlocking(3));
  EXPECT_EQ(q.dropped_on_close_count(), 2u);
  // Pending items remain dequeuable — only the offered ones were lost.
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueueTest, MirrorsIntoRegistryInstruments) {
  auto registry = std::make_shared<MetricsRegistry>();
  BoundedQueue<int> q(1);
  q.SetMetrics(QueueMetrics::For(registry.get(), "test"));

  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kWouldBlock);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kWouldBlock);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(3), QueueOp::kClosed);

  MetricsSnapshot snap = registry->Snapshot();
  EXPECT_EQ(snap.CounterValue("tcq_queue_enqueued_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_enqueue_blocked_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_dequeue_blocked_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_dropped_on_close_total{queue=\"test\"}"), 1);
  EXPECT_EQ(snap.GaugeValue("tcq_queue_depth{queue=\"test\"}"), 0);
  const MetricsSnapshot::HistogramData* wait =
      snap.FindHistogram("tcq_queue_wait_us{queue=\"test\"}");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 1u);  // one enqueue->dequeue residence observed
}

TEST(FjordTest, PushModeNeverBlocksConsumer) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 2);
  Tuple t;
  // Empty queue: control returns immediately with kWouldBlock.
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kWouldBlock);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kOk);
  EXPECT_EQ(t.at(0).AsInt64(), 1);
}

TEST(FjordTest, PushModeProducerSeesBackpressure) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 1);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  EXPECT_EQ(producer.Produce(IntTuple(2)), QueueOp::kWouldBlock);
}

TEST(FjordTest, PullModeDeliversInOrderAcrossThreads) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPull, 4);
  std::thread t([p = producer]() mutable {
    for (int i = 0; i < 50; ++i) ASSERT_EQ(p.Produce(IntTuple(i)), QueueOp::kOk);
    p.Close();
  });
  int expected = 0;
  Tuple tuple;
  while (consumer.Consume(&tuple) == QueueOp::kOk) {
    EXPECT_EQ(tuple.at(0).AsInt64(), expected++);
  }
  EXPECT_EQ(expected, 50);
  EXPECT_TRUE(consumer.Exhausted());
  t.join();
}

TEST(FjordTest, ExchangeModeBlocksConsumerOnly) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kExchange, 1);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  // Producer side is non-blocking when full.
  EXPECT_EQ(producer.Produce(IntTuple(2)), QueueOp::kWouldBlock);
  Tuple t;
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kOk);
}

TEST(FjordTest, CloseEndsStreamForConsumer) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 4);
  producer.Close();
  Tuple t;
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kClosed);
}

TEST(FjordTest, ModeNames) {
  EXPECT_STREQ(FjordModeName(FjordMode::kPull), "pull");
  EXPECT_STREQ(FjordModeName(FjordMode::kPush), "push");
  EXPECT_STREQ(FjordModeName(FjordMode::kExchange), "exchange");
}

}  // namespace
}  // namespace tcq
