// Tests for the Fjords inter-module communication layer: queue semantics
// (push vs pull vs exchange), close/drain behaviour, and non-blocking
// guarantees under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "fjords/fjord.h"
#include "fjords/queue.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

SchemaRef OneIntSchema() {
  return Schema::Make({{"v", ValueType::kInt64, 0}});
}

Tuple IntTuple(int64_t v) {
  return Tuple::Make(OneIntSchema(), {Value::Int64(v)}, v);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kOk);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, TryEnqueueFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(3), QueueOp::kWouldBlock);
  EXPECT_EQ(q.enqueue_blocked_count(), 1u);
}

TEST(BoundedQueueTest, TryDequeueFailsWhenEmpty) {
  BoundedQueue<int> q(2);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kWouldBlock);
  EXPECT_EQ(q.dequeue_blocked_count(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsThenReportsClosed) {
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kClosed);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);  // pending item still there
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kClosed);
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedQueueTest, BlockingHandoffAcrossThreads) {
  BoundedQueue<int> q(1);
  std::atomic<int> sum{0};
  std::thread consumer([&] {
    int v;
    while (q.DequeueBlocking(&v)) sum += v;
  });
  for (int i = 1; i <= 100; ++i) ASSERT_TRUE(q.EnqueueBlocking(i));
  q.Close();
  consumer.join();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.DequeueBlocking(&v));
  });
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  std::thread producer([&] { EXPECT_FALSE(q.EnqueueBlocking(2)); });
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, CountsItemsDroppedOnClose) {
  // Regression: enqueueing into a closed queue silently destroyed the item
  // with no trace. The loss is now counted.
  BoundedQueue<int> q(2);
  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  q.Close();
  EXPECT_EQ(q.dropped_on_close_count(), 0u);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kClosed);
  EXPECT_EQ(q.dropped_on_close_count(), 1u);
  EXPECT_FALSE(q.EnqueueBlocking(3));
  EXPECT_EQ(q.dropped_on_close_count(), 2u);
  // Pending items remain dequeuable — only the offered ones were lost.
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(out, 1);
}

TEST(BoundedQueueTest, MirrorsIntoRegistryInstruments) {
  auto registry = std::make_shared<MetricsRegistry>();
  BoundedQueue<int> q(1);
  q.SetMetrics(QueueMetrics::For(registry.get(), "test"));

  ASSERT_EQ(q.TryEnqueue(1), QueueOp::kOk);
  EXPECT_EQ(q.TryEnqueue(2), QueueOp::kWouldBlock);
  int out = 0;
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kOk);
  EXPECT_EQ(q.TryDequeue(&out), QueueOp::kWouldBlock);
  q.Close();
  EXPECT_EQ(q.TryEnqueue(3), QueueOp::kClosed);

  MetricsSnapshot snap = registry->Snapshot();
  EXPECT_EQ(snap.CounterValue("tcq_queue_enqueued_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_enqueue_blocked_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_dequeue_blocked_total{queue=\"test\"}"), 1);
  EXPECT_EQ(
      snap.CounterValue("tcq_queue_dropped_on_close_total{queue=\"test\"}"), 1);
  EXPECT_EQ(snap.GaugeValue("tcq_queue_depth{queue=\"test\"}"), 0);
  const MetricsSnapshot::HistogramData* wait =
      snap.FindHistogram("tcq_queue_wait_us{queue=\"test\"}");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 1u);  // one enqueue->dequeue residence observed
}

TEST(BoundedQueueTest, PushBatchBlockingLeavesSuffixWithCallerOnClose) {
  // Regression: the un-pushed suffix of a batch interrupted by Close() must
  // stay with the caller — NOT destroyed and NOT counted in
  // dropped_on_close_count(). Counting it here double-counted every batch
  // drop the caller also tracked.
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.TryEnqueue(100), QueueOp::kOk);
  ASSERT_EQ(q.TryEnqueue(101), QueueOp::kOk);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();
  });
  int items[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  // Room for 2, then the producer blocks until the close wakes it.
  size_t pushed = q.PushBatchBlocking(items, 8);
  closer.join();
  EXPECT_EQ(pushed, 2u);
  EXPECT_EQ(q.dropped_on_close_count(), 0u);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(items[i], i);  // suffix intact
  // The items that DID make it in remain dequeuable after close.
  int out = 0;
  ASSERT_TRUE(q.DequeueBlocking(&out));
  EXPECT_EQ(out, 100);
  ASSERT_TRUE(q.DequeueBlocking(&out));
  ASSERT_TRUE(q.DequeueBlocking(&out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(q.DequeueBlocking(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.DequeueBlocking(&out));
  EXPECT_TRUE(q.exhausted());
}

TEST(BoundedQueueTest, MpmcMixedBatchAndSingleConservesItems) {
  // 4 producers x 4 consumers mixing single and batch endpoints, with a
  // Close() racing mid-stream. Conservation invariants:
  //   * every accepted item is consumed exactly once (counts AND value sums);
  //   * dropped_on_close_count() equals exactly the single-item offers that
  //     hit the closed queue (batch suffixes are retained, never destroyed).
  constexpr int kPerProducer = 8000;
  BoundedQueue<int> q(64);
  std::atomic<uint64_t> accepted{0}, destroyed{0}, retained{0}, consumed{0};
  std::atomic<uint64_t> sum_in{0}, sum_out{0};

  auto single_producer = [&](int id, bool blocking) {
    for (int i = 0; i < kPerProducer; ++i) {
      const int v = id * kPerProducer + i;
      QueueOp op = QueueOp::kWouldBlock;
      if (blocking) {
        op = q.EnqueueBlocking(v) ? QueueOp::kOk : QueueOp::kClosed;
      } else {
        while ((op = q.TryEnqueue(v)) == QueueOp::kWouldBlock) {
          std::this_thread::yield();
        }
      }
      if (op == QueueOp::kOk) {
        accepted.fetch_add(1);
        sum_in.fetch_add(static_cast<uint64_t>(v));
      } else {
        destroyed.fetch_add(1);  // closed-queue single offers ARE destroyed
      }
    }
  };
  auto batch_producer = [&](int id, bool blocking) {
    constexpr int kChunk = 37;
    int sent = 0;
    while (sent < kPerProducer) {
      const int n = std::min(kChunk, kPerProducer - sent);
      std::vector<int> buf(static_cast<size_t>(n));
      for (int j = 0; j < n; ++j) buf[static_cast<size_t>(j)] =
          id * kPerProducer + sent + j;
      size_t off = 0;
      QueueOp op = QueueOp::kOk;
      while (off < static_cast<size_t>(n)) {
        size_t pushed;
        if (blocking) {
          pushed = q.PushBatchBlocking(buf.data() + off,
                                       static_cast<size_t>(n) - off);
          op = pushed + off < static_cast<size_t>(n) ? QueueOp::kClosed
                                                     : QueueOp::kOk;
        } else {
          pushed = q.TryPushBatch(buf.data() + off,
                                  static_cast<size_t>(n) - off, &op);
        }
        accepted.fetch_add(pushed);
        for (size_t j = off; j < off + pushed; ++j) {
          sum_in.fetch_add(static_cast<uint64_t>(buf[j]));
        }
        off += pushed;
        if (op == QueueOp::kClosed) {
          retained.fetch_add(static_cast<size_t>(n) - off);
          return;  // suffix stays ours; nothing destroyed, nothing counted
        }
        if (op == QueueOp::kWouldBlock) std::this_thread::yield();
      }
      sent += n;
    }
  };
  auto single_consumer = [&](bool blocking) {
    int v;
    for (;;) {
      QueueOp op;
      if (blocking) {
        if (!q.DequeueBlocking(&v)) return;
        op = QueueOp::kOk;
      } else {
        op = q.TryDequeue(&v);
        if (op == QueueOp::kClosed) return;
        if (op == QueueOp::kWouldBlock) {
          std::this_thread::yield();
          continue;
        }
      }
      consumed.fetch_add(1);
      sum_out.fetch_add(static_cast<uint64_t>(v));
    }
  };
  auto batch_consumer = [&](bool blocking) {
    std::vector<int> out;
    for (;;) {
      out.clear();
      size_t got;
      QueueOp op = QueueOp::kOk;
      if (blocking) {
        got = q.PopBatchBlocking(&out, 29);
        if (got == 0) return;  // closed and drained
      } else {
        got = q.TryPopBatch(&out, 29, &op);
        if (op == QueueOp::kClosed) return;
        if (op == QueueOp::kWouldBlock) {
          std::this_thread::yield();
          continue;
        }
      }
      consumed.fetch_add(got);
      for (int v : out) sum_out.fetch_add(static_cast<uint64_t>(v));
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(single_producer, 0, true);
  threads.emplace_back(single_producer, 1, false);
  threads.emplace_back(batch_producer, 2, true);
  threads.emplace_back(batch_producer, 3, false);
  threads.emplace_back(single_consumer, true);
  threads.emplace_back(single_consumer, false);
  threads.emplace_back(batch_consumer, true);
  threads.emplace_back(batch_consumer, false);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.Close();
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(q.exhausted());  // consumers drained everything accepted
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_EQ(sum_out.load(), sum_in.load());
  EXPECT_EQ(q.dropped_on_close_count(), destroyed.load());
  // Every offer either landed, was destroyed (and counted), or stayed with
  // its producer; batch producers stop at the first kClosed so the total
  // can fall short of 4*kPerProducer, but never exceed it.
  EXPECT_LE(accepted.load() + destroyed.load() + retained.load(),
            4u * kPerProducer);
}

TEST(FjordTest, PushModeNeverBlocksConsumer) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 2);
  Tuple t;
  // Empty queue: control returns immediately with kWouldBlock.
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kWouldBlock);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kOk);
  EXPECT_EQ(t.at(0).AsInt64(), 1);
}

TEST(FjordTest, PushModeProducerSeesBackpressure) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 1);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  EXPECT_EQ(producer.Produce(IntTuple(2)), QueueOp::kWouldBlock);
}

TEST(FjordTest, PullModeDeliversInOrderAcrossThreads) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPull, 4);
  std::thread t([p = producer]() mutable {
    for (int i = 0; i < 50; ++i) ASSERT_EQ(p.Produce(IntTuple(i)), QueueOp::kOk);
    p.Close();
  });
  int expected = 0;
  Tuple tuple;
  while (consumer.Consume(&tuple) == QueueOp::kOk) {
    EXPECT_EQ(tuple.at(0).AsInt64(), expected++);
  }
  EXPECT_EQ(expected, 50);
  EXPECT_TRUE(consumer.Exhausted());
  t.join();
}

TEST(FjordTest, ExchangeModeBlocksConsumerOnly) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kExchange, 1);
  EXPECT_EQ(producer.Produce(IntTuple(1)), QueueOp::kOk);
  // Producer side is non-blocking when full.
  EXPECT_EQ(producer.Produce(IntTuple(2)), QueueOp::kWouldBlock);
  Tuple t;
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kOk);
}

TEST(FjordTest, CloseEndsStreamForConsumer) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 4);
  producer.Close();
  Tuple t;
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kClosed);
}

TEST(FjordTest, PullModeProduceBatchRetainsSuffixOnClose) {
  // Regression: pull-mode ProduceBatch used to clear the whole batch on
  // close, so "before - batch.size()" callers counted close-dropped tuples
  // as forwarded. The unconsumed suffix must survive in the batch.
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPull, 2);
  auto closer_producer = producer;
  std::thread closer([p = std::move(closer_producer)]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    p.Close();
  });
  TupleBatch batch;
  for (int i = 0; i < 5; ++i) batch.push_back(IntTuple(i));
  // Two fit; the blocking push then parks until the close releases it.
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kClosed);
  closer.join();
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.data()[i].at(0).AsInt64(), static_cast<int64_t>(i) + 2);
  }
  EXPECT_EQ(fjord->queue().dropped_on_close_count(), 0u);
  // Re-offering the suffix after close keeps it with the caller too.
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kClosed);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(FjordTest, ControlLaneTravelsBehindRowsAndDivertsOnConsume) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 8);
  TupleBatch batch;
  batch.push_back(IntTuple(1));
  batch.push_back(IntTuple(2));
  batch.AddPunctuation(Punctuation{0, 2});
  // push_back of a control tuple diverts onto the lane, not the rows.
  batch.push_back(Tuple::MakePunctuation(0, 5));
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_EQ(batch.punctuations().size(), 2u);

  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kOk);
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.punctuations().empty());

  TupleBatch out;
  QueueOp op = QueueOp::kOk;
  // Rows and control tuples count toward the popped total; the consumer's
  // push_back diverts control tuples back onto the output lane.
  EXPECT_EQ(consumer.ConsumeBatch(&out, 16, &op), 4u);
  EXPECT_EQ(op, QueueOp::kOk);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out.punctuations().size(), 2u);
  EXPECT_EQ(out.punctuations()[0].low_watermark, 2);
  EXPECT_EQ(out.punctuations()[1].low_watermark, 5);
}

TEST(FjordTest, BackpressureRetainsLaneSuffixForRetry) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 3);
  TupleBatch batch;
  batch.push_back(IntTuple(1));
  batch.push_back(IntTuple(2));
  batch.AddPunctuation(Punctuation{0, 2});
  batch.AddPunctuation(Punctuation{0, 7});
  // Capacity 3: both rows and the first punctuation land, the second stays
  // on the lane for the caller's retry.
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kWouldBlock);
  EXPECT_TRUE(batch.empty());
  ASSERT_EQ(batch.punctuations().size(), 1u);
  EXPECT_EQ(batch.punctuations()[0].low_watermark, 7);

  Tuple t;
  ASSERT_EQ(consumer.Consume(&t), QueueOp::kOk);  // free one slot
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kOk);
  EXPECT_TRUE(batch.punctuations().empty());

  TupleBatch out;
  QueueOp op = QueueOp::kOk;
  EXPECT_EQ(consumer.ConsumeBatch(&out, 16, &op), 3u);
  ASSERT_EQ(out.punctuations().size(), 2u);
  EXPECT_EQ(out.punctuations()[0].low_watermark, 2);
  EXPECT_EQ(out.punctuations()[1].low_watermark, 7);
}

TEST(FjordTest, LaneHeldBackWhileRowsRemain) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 1);
  TupleBatch batch;
  batch.push_back(IntTuple(1));
  batch.push_back(IntTuple(2));
  batch.AddPunctuation(Punctuation{0, 9});
  // Only one row fits; the lane must NOT jump ahead of the stuck row
  // (its contract is "applies after this batch's rows").
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kWouldBlock);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.punctuations().size(), 1u);
}

TEST(FjordTest, LaneOnlyBatchCountsAsDelivery) {
  auto [producer, consumer, fjord] = Fjord::Make(FjordMode::kPush, 4);
  TupleBatch batch;
  batch.AddPunctuation(Punctuation{3, 11});
  EXPECT_EQ(producer.ProduceBatch(&batch), QueueOp::kOk);

  TupleBatch out;
  QueueOp op = QueueOp::kOk;
  // got > 0 even though no data rows arrived — pump loops treat a lane-only
  // pop as work to deliver.
  EXPECT_EQ(consumer.ConsumeBatch(&out, 16, &op), 1u);
  EXPECT_TRUE(out.empty());
  ASSERT_EQ(out.punctuations().size(), 1u);
  EXPECT_EQ(out.punctuations()[0].source, 3u);
  EXPECT_EQ(out.punctuations()[0].low_watermark, 11);
}

TEST(FjordTest, ModeNames) {
  EXPECT_STREQ(FjordModeName(FjordMode::kPull), "pull");
  EXPECT_STREQ(FjordModeName(FjordMode::kPush), "push");
  EXPECT_STREQ(FjordModeName(FjordMode::kExchange), "exchange");
}

}  // namespace
}  // namespace tcq
