// Flux tests (paper §2.4): partitioning correctness, exactly-once counting
// under online repartitioning, skew rebalancing, replicated failover with
// no state loss, and the reliability-vs-performance knob.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "flux/flux.h"

namespace tcq {
namespace {

TEST(PartitionerTest, StableAndComplete) {
  Partitioner p(64, 4);
  for (int64_t k = 0; k < 1000; ++k) {
    size_t b = p.BucketOf(k);
    EXPECT_LT(b, 64u);
    EXPECT_EQ(b, p.BucketOf(k));  // stable
    EXPECT_LT(p.OwnerOf(b), 4u);
  }
  size_t total = 0;
  for (size_t w = 0; w < 4; ++w) total += p.BucketsOf(w).size();
  EXPECT_EQ(total, 64u);
}

// The bucket hash must spread realistic key populations — not just random
// ones — evenly across buckets. Sequential ids, strided ids (pointers,
// aligned offsets), and keys that vary only in their high bits are exactly
// the populations a truncated mixer fails on. Chi-square against the
// uniform expectation with 63 degrees of freedom: the p=0.001 critical
// value is ~103.4, so 100 gives a deterministic-but-meaningful bound.
TEST(PartitionerTest, BucketOfIsUniformOnStructuredKeys) {
  constexpr size_t kBuckets = 64;
  constexpr size_t kKeys = 16384;
  struct KeySet {
    const char* name;
    int64_t (*key)(size_t);
  };
  const KeySet kSets[] = {
      {"sequential", [](size_t i) { return static_cast<int64_t>(i); }},
      {"strided", [](size_t i) { return static_cast<int64_t>(i) * 8; }},
      {"high-bits-only",
       [](size_t i) { return static_cast<int64_t>(i) << 40; }},
      {"bit-sparse",
       [](size_t i) {
         // 7 bits near the bottom, 7 bits near the top, nothing between.
         return static_cast<int64_t>((i & 0x7F) | ((i >> 7) << 48));
       }},
  };
  for (const KeySet& set : kSets) {
    Partitioner p(kBuckets, 4);
    size_t counts[kBuckets] = {};
    for (size_t i = 0; i < kKeys; ++i) ++counts[p.BucketOf(set.key(i))];
    const double expected = static_cast<double>(kKeys) / kBuckets;
    double chi2 = 0.0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const double d = static_cast<double>(counts[b]) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 100.0) << set.name << " keys skew the bucket hash";
  }
}

TEST(PartitionerTest, ReassignMovesOwnership) {
  Partitioner p(8, 2);
  p.Reassign(3, 1);
  EXPECT_EQ(p.OwnerOf(3), 1u);
}

TEST(SimulatedWorkerTest, ProcessesUpToCapacity) {
  SimulatedWorker w(0, 3);
  for (int i = 0; i < 10; ++i) w.Enqueue({int64_t(i), 0});
  EXPECT_EQ(w.Tick(), 3u);
  EXPECT_EQ(w.QueueLength(), 7u);
  EXPECT_EQ(w.ProcessedTotal(), 3u);
}

TEST(SimulatedWorkerTest, FailLosesEverything) {
  SimulatedWorker w(0, 10);
  w.Enqueue({7, 0});
  w.Tick();
  EXPECT_EQ(w.CountFor(0, 7), 1u);
  w.Fail();
  EXPECT_EQ(w.CountFor(0, 7), 0u);
  EXPECT_EQ(w.QueueLength(), 0u);
  w.Enqueue({7, 0});  // network can't deliver to a failed machine
  EXPECT_EQ(w.QueueLength(), 0u);
}

TEST(SimulatedWorkerTest, StateMovementPrimitives) {
  SimulatedWorker a(0, 100), b(1, 100);
  for (int i = 0; i < 5; ++i) a.Enqueue({7, 3});
  a.Tick();
  a.Enqueue({7, 3});  // one still queued
  BucketState st = a.ExtractBucket(3);
  b.InstallBucket(3, st);
  auto queued = a.ExtractQueued(3);
  for (const WorkItem& item : queued) b.Enqueue(item);
  b.Tick();
  EXPECT_EQ(b.CountFor(3, 7), 6u);
  EXPECT_EQ(a.CountFor(3, 7), 0u);
}

// Ground truth for exactly-once checks.
std::map<int64_t, uint64_t> Feed(Flux* flux, size_t n, double skew,
                                 uint64_t seed) {
  Rng rng(seed);
  std::map<int64_t, uint64_t> truth;
  for (size_t i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(rng.Zipf(1000, skew));
    flux->Ingest(key);
    ++truth[key];
  }
  return truth;
}

TEST(FluxTest, CountsAreExactWithoutFailures) {
  Flux flux({.num_workers = 4, .worker_capacity = 32});
  auto truth = Feed(&flux, 20000, 0.0, 1);
  flux.RunUntilDrained();
  for (const auto& [key, count] : truth) {
    EXPECT_EQ(flux.CountForKey(key), count) << "key " << key;
  }
  EXPECT_EQ(flux.TotalProcessed(), 20000u);
}

TEST(FluxTest, RebalancePreservesExactCounts) {
  Flux flux({.num_workers = 4,
             .worker_capacity = 16,
             .num_buckets = 64,
             .rebalance = true,
             .rebalance_interval = 5});
  Rng rng(2);
  std::map<int64_t, uint64_t> truth;
  // Interleave ingestion and ticking so rebalancing happens mid-stream.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 100; ++i) {
      int64_t key = static_cast<int64_t>(rng.Zipf(500, 0.9));
      flux.Ingest(key);
      ++truth[key];
    }
    flux.Tick();
  }
  flux.RunUntilDrained();
  EXPECT_GT(flux.buckets_moved(), 0u) << "skew should trigger movement";
  for (const auto& [key, count] : truth) {
    EXPECT_EQ(flux.CountForKey(key), count) << "key " << key;
  }
}

TEST(FluxTest, RebalanceReducesImbalanceUnderSkew) {
  auto run = [&](bool rebalance) {
    Flux flux({.num_workers = 8,
               .worker_capacity = 8,
               .num_buckets = 128,
               .rebalance = rebalance,
               .rebalance_interval = 4});
    Rng rng(3);
    for (int round = 0; round < 150; ++round) {
      for (int i = 0; i < 80; ++i) {
        flux.Ingest(static_cast<int64_t>(rng.Zipf(2000, 1.1)));
      }
      flux.Tick();
    }
    return flux;
  };
  Flux off = run(false);
  Flux on = run(true);
  // With rebalancing the hot worker's backlog is spread out.
  EXPECT_LT(on.MaxQueueLength(), off.MaxQueueLength())
      << "rebalancing should cap the hot worker's backlog";
  EXPECT_GT(on.TotalProcessed(), off.TotalProcessed());
}

TEST(FluxTest, ReplicatedFailoverLosesNothing) {
  Flux flux({.num_workers = 4,
             .worker_capacity = 64,
             .num_buckets = 32,
             .replication = true});
  Rng rng(4);
  std::map<int64_t, uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Zipf(300, 0.5));
    flux.Ingest(key);
    ++truth[key];
    if (i % 7 == 0) flux.Tick();
  }
  // Crash a worker mid-stream (some items processed, some in flight).
  ASSERT_TRUE(flux.FailWorker(1).ok());
  for (int i = 0; i < 5000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Zipf(300, 0.5));
    flux.Ingest(key);
    ++truth[key];
    if (i % 7 == 0) flux.Tick();
  }
  flux.RunUntilDrained();
  uint64_t missing = 0;
  for (const auto& [key, count] : truth) {
    uint64_t got = flux.CountForKey(key);
    EXPECT_EQ(got, count) << "key " << key;
    if (got < count) missing += count - got;
  }
  EXPECT_EQ(missing, 0u) << "replicated failover must preserve all state";
}

TEST(FluxTest, UnreplicatedFailureLosesState) {
  Flux flux({.num_workers = 4,
             .worker_capacity = 64,
             .num_buckets = 32,
             .replication = false});
  Rng rng(5);
  std::map<int64_t, uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    int64_t key = static_cast<int64_t>(rng.Zipf(300, 0.5));
    flux.Ingest(key);
    ++truth[key];
    if (i % 7 == 0) flux.Tick();
  }
  ASSERT_TRUE(flux.FailWorker(1).ok());
  flux.RunUntilDrained();
  uint64_t missing = 0;
  for (const auto& [key, count] : truth) {
    uint64_t got = flux.CountForKey(key);
    if (got < count) missing += count - got;
  }
  EXPECT_GT(missing, 0u) << "without replication a crash must lose results";
}

TEST(FluxTest, ReplicationCostsThroughput) {
  // The QoS knob: replication dual-routes every item, halving effective
  // capacity.
  auto run = [&](bool replication) {
    Flux flux({.num_workers = 4,
               .worker_capacity = 16,
               .num_buckets = 32,
               .replication = replication});
    Rng rng(6);
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 64; ++i) {
        flux.Ingest(static_cast<int64_t>(rng.Zipf(300, 0.0)));
      }
      flux.Tick();
    }
    return flux.TotalQueueLength();
  };
  size_t backlog_plain = run(false);
  size_t backlog_replicated = run(true);
  EXPECT_GT(backlog_replicated, backlog_plain)
      << "replication consumes capacity and grows backlog";
}

TEST(FluxTest, FailureGuards) {
  Flux flux({.num_workers = 2, .worker_capacity = 8});
  EXPECT_TRUE(flux.FailWorker(9).IsInvalidArgument());
  ASSERT_TRUE(flux.FailWorker(0).ok());
  EXPECT_EQ(flux.FailWorker(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(flux.FailWorker(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(flux.num_live_workers(), 1u);
}

}  // namespace
}  // namespace tcq
