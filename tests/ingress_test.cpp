// Ingress tests: generators (determinism, schemas, loss/jitter knobs),
// arrival processes, the wrapper's threaded push/pull hosting, CSV sources,
// and the simulated remote index with its lookup cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "eddy/eddy.h"
#include "ingress/generators.h"
#include "ingress/rate.h"
#include "ingress/remote_index.h"
#include "ingress/source.h"
#include "ingress/wrapper.h"

namespace tcq {
namespace {

TEST(GeneratorTest, StockTicksFollowSchemaAndDays) {
  StockTickGenerator gen("stocks", 0,
                         {.symbols = {"MSFT", "AAPL"}, .seed = 1, .days = 3});
  std::vector<Tuple> all;
  Tuple t;
  while (gen.Next(&t)) all.push_back(t);
  ASSERT_EQ(all.size(), 6u);  // 3 days x 2 symbols
  EXPECT_EQ(all[0].Get("stockSymbol").AsString(), "MSFT");
  EXPECT_EQ(all[1].Get("stockSymbol").AsString(), "AAPL");
  EXPECT_EQ(all[0].timestamp(), 1);
  EXPECT_EQ(all[5].timestamp(), 3);
  for (const Tuple& tick : all) {
    EXPECT_GT(tick.Get("closingPrice").AsDouble(), 0.0);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  StockTickGenerator a("a", 0, {.seed = 9, .days = 5});
  StockTickGenerator b("b", 0, {.seed = 9, .days = 5});
  Tuple ta, tb;
  while (a.Next(&ta)) {
    ASSERT_TRUE(b.Next(&tb));
    EXPECT_EQ(ta, tb);
  }
}

TEST(GeneratorTest, PacketsAreSkewed) {
  PacketGenerator gen("pkts", 0,
                      {.num_hosts = 100, .host_skew = 0.99, .seed = 3,
                       .count = 5000});
  std::map<int64_t, int> src_counts;
  Tuple t;
  while (gen.Next(&t)) ++src_counts[t.Get("srcHost").AsInt64()];
  // Hot host dominates under zipf.
  EXPECT_GT(src_counts[0], 500);
}

TEST(GeneratorTest, SensorLossAndJitter) {
  SensorGenerator gen("sensors", 0,
                      {.num_sensors = 4, .loss_rate = 0.5, .max_jitter = 3,
                       .seed = 7, .count = 1000});
  size_t produced = 0;
  Tuple t;
  while (gen.Next(&t)) ++produced;
  EXPECT_GT(gen.dropped(), 300u);
  EXPECT_EQ(produced + gen.dropped(), 1000u);
}

TEST(ArrivalTest, SteadyGapMatchesRate) {
  SteadyArrivals a(1000.0);  // 1k/s => 1000us gaps
  EXPECT_EQ(a.NextGap(), 1000);
}

TEST(ArrivalTest, PoissonMeanIsClose) {
  PoissonArrivals a(1000.0, 5);
  double total = 0;
  for (int i = 0; i < 20000; ++i) total += double(a.NextGap());
  EXPECT_NEAR(total / 20000.0, 1000.0, 100.0);
}

TEST(ArrivalTest, BurstyAlternates) {
  BurstyArrivals a({.burst_per_second = 100000,
                    .burst_us = 100,
                    .silence_us = 5000});
  // Gaps are 10us during the burst, then one long gap spanning the silence.
  std::vector<Timestamp> gaps;
  for (int i = 0; i < 30; ++i) gaps.push_back(a.NextGap());
  EXPECT_EQ(gaps[0], 10);
  bool saw_silence = false;
  for (Timestamp g : gaps) saw_silence = saw_silence || g > 5000 - 100;
  EXPECT_TRUE(saw_silence);
}

TEST(CsvSourceTest, ParsesTypedRows) {
  std::string path = testing::TempDir() + "/tcq_csv_test.csv";
  {
    std::ofstream out(path);
    out << "# day,symbol,price\n";
    out << "1,MSFT,50.5\n";
    out << "2,AAPL,20.25\n";
  }
  SchemaRef schema = StockTickGenerator::MakeSchema(0);
  auto src = CsvSource::Open(path, "csv", 0, schema, "timestamp");
  ASSERT_TRUE(src.ok()) << src.status();
  Tuple t;
  ASSERT_TRUE((*src)->Next(&t));
  EXPECT_EQ(t.timestamp(), 1);
  EXPECT_EQ(t.Get("stockSymbol").AsString(), "MSFT");
  EXPECT_DOUBLE_EQ(t.Get("closingPrice").AsDouble(), 50.5);
  ASSERT_TRUE((*src)->Next(&t));
  EXPECT_FALSE((*src)->Next(&t));
  std::remove(path.c_str());
}

TEST(CsvSourceTest, MissingFileIsIOError) {
  auto src = CsvSource::Open("/nonexistent/file.csv", "csv", 0,
                             StockTickGenerator::MakeSchema(0), "timestamp");
  EXPECT_FALSE(src.ok());
  EXPECT_EQ(src.status().code(), StatusCode::kIOError);
}

TEST(CsvSourceTest, BadCellIsInvalidArgument) {
  std::string path = testing::TempDir() + "/tcq_csv_bad.csv";
  {
    std::ofstream out(path);
    out << "notanumber,MSFT,50.5\n";
  }
  auto src = CsvSource::Open(path, "csv", 0,
                             StockTickGenerator::MakeSchema(0), "timestamp");
  EXPECT_TRUE(src.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(WrapperTest, PullSourceFlowsThroughStreamer) {
  Wrapper wrapper({.queue_capacity = 128});
  auto gen = std::make_unique<StockTickGenerator>(
      "stocks", SourceId{0},
      StockTickGenerator::Options{.seed = 1, .days = 50});
  FjordConsumer feed = wrapper.HostPullSource(std::move(gen), nullptr);
  wrapper.Start();

  size_t received = 0;
  Tuple t;
  while (true) {
    QueueOp op = feed.Consume(&t);
    if (op == QueueOp::kOk) {
      ++received;
    } else if (op == QueueOp::kClosed) {
      break;
    }
  }
  wrapper.Stop();
  EXPECT_EQ(received, 200u);  // 50 days x 4 default symbols
  EXPECT_EQ(wrapper.tuples_forwarded(), 200u);
}

TEST(WrapperTest, PushSourceDelivery) {
  Wrapper wrapper;
  auto [producer, consumer] = wrapper.HostPushSource("external");
  SchemaRef schema = StockTickGenerator::MakeSchema(0);
  EXPECT_EQ(producer.Produce(Tuple::Make(
                schema,
                {Value::TimestampVal(1), Value::String("MSFT"),
                 Value::Double(50.0)},
                1)),
            QueueOp::kOk);
  producer.Close();
  Tuple t;
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kOk);
  EXPECT_EQ(consumer.Consume(&t), QueueOp::kClosed);
}

TEST(WrapperTest, DropOnFullCountsDrops) {
  Wrapper wrapper({.queue_capacity = 4, .drop_on_full = true});
  auto gen = std::make_unique<StockTickGenerator>(
      "stocks", SourceId{0},
      StockTickGenerator::Options{.seed = 1, .days = 100});
  FjordConsumer feed = wrapper.HostPullSource(std::move(gen), nullptr);
  wrapper.Start();
  // Do not consume; the tiny queue overflows and the wrapper drops.
  while (wrapper.tuples_forwarded() + wrapper.tuples_dropped() < 400) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wrapper.Stop();
  EXPECT_GT(wrapper.tuples_dropped(), 0u);
  (void)feed;
}

// --- Simulated remote index ----------------------------------------------------

SchemaRef KV(SourceId s) {
  return Schema::Make({{"k", ValueType::kInt64, s},
                       {"v", ValueType::kInt64, s}});
}

Tuple KVRow(SourceId s, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(KV(s), {Value::Int64(k), Value::Int64(v)}, ts);
}

TEST(RemoteIndexTest, LookupChargesSimulatedCost) {
  SimulatedRemoteIndex index(1, KV(1), "k", {.lookup_cost_us = 500});
  index.Insert(KVRow(1, 7, 70, 0));
  index.Insert(KVRow(1, 7, 71, 0));
  std::vector<Tuple> out;
  index.Lookup(Value::Int64(7), &out);
  EXPECT_EQ(out.size(), 2u);
  index.Lookup(Value::Int64(9), &out);
  EXPECT_EQ(index.lookups(), 2u);
  EXPECT_EQ(index.simulated_cost_us(), 1000);
}

TEST(RemoteIndexTest, ProbeModuleEmitsJoins) {
  SimulatedRemoteIndex index(1, KV(1), "k", {});
  index.Insert(KVRow(1, 7, 70, 0));
  RemoteIndexProbe probe("rip", &index, {0, "k"});
  EXPECT_TRUE(probe.AppliesTo(SourceBit(0)));
  EXPECT_FALSE(probe.AppliesTo(SourceBit(0) | SourceBit(1)));

  std::vector<Envelope> out;
  EXPECT_EQ(probe.Process({KVRow(0, 7, 1, 5), 0, 5}, &out),
            ModuleAction::kExpand);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.sources(), SourceBit(0) | SourceBit(1));
  EXPECT_EQ(probe.Process({KVRow(0, 9, 1, 6), 0, 6}, &out),
            ModuleAction::kDrop);
}

TEST(RemoteIndexTest, CacheAvoidsRepeatLookups) {
  SimulatedRemoteIndex index(1, KV(1), "k", {.lookup_cost_us = 1000});
  for (int64_t k = 0; k < 5; ++k) index.Insert(KVRow(1, k, k * 10, 0));
  SteM cache("cacheT", 1, KV(1), {.key_attr = "k"});
  RemoteIndexProbe probe("rip", &index, {0, "k"}, &cache);

  std::vector<Envelope> out;
  // Probe key 3 twice: the second is served from the cache.
  probe.Process({KVRow(0, 3, 1, 5), 0, 5}, &out);
  probe.Process({KVRow(0, 3, 2, 6), 0, 6}, &out);
  EXPECT_EQ(index.lookups(), 1u);
  EXPECT_EQ(probe.cache_hits(), 1u);
  ASSERT_EQ(out.size(), 2u);
  // The joined tuple has a "v" from each side; read the index side's.
  const Value* v = ResolveAttr(out[1].tuple, {1, "v"});
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsInt64(), 30);
}

TEST(RemoteIndexTest, EndToEndIndexJoinInEddy) {
  // The §2.2 scenario: stream S joins a remote index on T inside an eddy.
  SimulatedRemoteIndex index(1, KV(1), "k", {.lookup_cost_us = 100});
  for (int64_t k = 0; k < 10; ++k) index.Insert(KVRow(1, k, k * 10, 0));
  auto cache = std::make_shared<SteM>("cacheT", 1, KV(1),
                                      StemOptions{.key_attr = "k"});

  Eddy eddy(MakeLotteryPolicy(3));
  eddy.AddModule(std::make_unique<RemoteIndexProbe>("rip", &index,
                                                    AttrRef{0, "k"},
                                                    cache.get()));
  size_t outputs = 0;
  eddy.SetOutput([&](const Tuple&) { ++outputs; });
  for (int64_t i = 0; i < 30; ++i) {
    eddy.Ingest(0, KVRow(0, i % 10, i, i));
  }
  EXPECT_EQ(outputs, 30u);
  EXPECT_EQ(index.lookups(), 10u);  // each key fetched once, then cached
}

}  // namespace
}  // namespace tcq
