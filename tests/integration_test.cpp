// Full-stack integration: one server running continuous, windowed, and
// self-join queries simultaneously over spooled streams, with history scans
// racing the live dataflow, query churn, and a final consistency audit.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "ingress/generators.h"
#include "psoup/psoup.h"
#include "server/telegraphcq.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

// Deterministic two-symbol ticker: MSFT fixed at 50, AAPL alternating
// (beats MSFT on even days).
void PushDay(TelegraphCQ* server, Timestamp d) {
  ASSERT_TRUE(server
                  ->Push("Stocks",
                         {Value::TimestampVal(d), Value::String("MSFT"),
                          Value::Double(50.0)},
                         d)
                  .ok());
  ASSERT_TRUE(server
                  ->Push("Stocks",
                         {Value::TimestampVal(d), Value::String("AAPL"),
                          Value::Double(d % 2 == 0 ? 60.0 : 40.0)},
                         d)
                  .ok());
}

TEST(IntegrationTest, MixedQueryKindsOverOneSpooledStream) {
  std::string dir = testing::TempDir() + "/tcq_integration";
  std::filesystem::create_directories(dir);
  TelegraphCQ::Options opts;
  opts.spool_dir = dir;
  opts.executor.num_eos = 2;
  TelegraphCQ server(opts);
  ASSERT_TRUE(server.DefineStream("Stocks", StockFields()).ok());

  // 1. Continuous: all AAPL wins.
  auto cq = server.Submit(
      "SELECT closingPrice, timestamp FROM Stocks "
      "WHERE stockSymbol = 'AAPL' AND closingPrice > 50.0");
  ASSERT_TRUE(cq.ok());
  // 2. Sliding window over days 4..40, width 4.
  auto win = server.Submit(
      "SELECT timestamp FROM Stocks WHERE stockSymbol = 'AAPL' "
      "AND closingPrice > 50.0 "
      "for (t = 4; t <= 40; t++) { WindowIs(Stocks, t - 3, t); }");
  ASSERT_TRUE(win.ok());
  // 3. Self-join: AAPL beating MSFT on the same day, hopping windows.
  auto join = server.Submit(
      "SELECT c2.stockSymbol FROM Stocks c1, Stocks c2 "
      "WHERE c1.stockSymbol = 'MSFT' AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp "
      "for (t = 10; t <= 40; t += 10) { "
      "WindowIs(c1, t - 9, t); WindowIs(c2, t - 9, t); }");
  ASSERT_TRUE(join.ok());

  server.Start();
  for (Timestamp d = 1; d <= 20; ++d) PushDay(&server, d);

  // Mid-stream: scan spooled history while data keeps flowing.
  auto hist = server.ScanHistory("Stocks", 5, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 12u);  // 6 days x 2 symbols

  // Drain the class's backlog before admitting the next query: a query
  // folded in mid-stream applies from its admission quantum onward, so
  // tuples still queued at admission would (correctly) reach it too.
  size_t pre = 0;
  for (int i = 0; i < 3000 && pre < 10; ++i) {
    Delivery d;
    while (cq->results->Poll(&d)) ++pre;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(pre, 10u);  // even days 2..20

  // Mid-stream: add one more continuous query (folded into the running
  // class) and cancel it again after a few days.
  auto late = server.Submit("SELECT * FROM Stocks WHERE closingPrice < 45.0");
  ASSERT_TRUE(late.ok());
  for (Timestamp d = 21; d <= 30; ++d) PushDay(&server, d);
  size_t late_got = 0;
  for (int i = 0; i < 2000 && late_got < 5; ++i) {
    Delivery d;
    while (late->results->Poll(&d)) ++late_got;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(late_got, 5u);  // odd days 21..29
  ASSERT_TRUE(server.Cancel(late->id).ok());
  // Removal takes effect at the next quantum; the input queue is empty here
  // (everything above was drained), so one quantum suffices.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (Timestamp d = 31; d <= 44; ++d) PushDay(&server, d);

  // Audit 1: continuous query saw every remaining even day once.
  size_t cq_got = pre;
  for (int i = 0; i < 3000 && cq_got < 22; ++i) {
    Delivery d;
    while (cq->results->Poll(&d)) {
      EXPECT_EQ(d.tuple.Get("timestamp").AsInt64() % 2, 0);
      ++cq_got;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(cq_got, 22u);  // even days 2..44

  // Audit 2: sliding windows fired for every t in [4, 40] with the even
  // days of [t-3, t].
  std::vector<WindowResult> windows;
  for (int i = 0; i < 3000 && windows.size() < 37; ++i) {
    WindowResult wr;
    while (win->windows->Poll(&wr)) windows.push_back(wr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(windows.size(), 37u);
  for (const WindowResult& wr : windows) {
    EXPECT_EQ(wr.tuples.size(), 2u) << "4-wide window has 2 even days";
  }

  // Audit 3: hopping self-join windows (width 10) have 5 even days each.
  std::vector<WindowResult> joins;
  for (int i = 0; i < 3000 && joins.size() < 4; ++i) {
    WindowResult wr;
    while (join->windows->Poll(&wr)) joins.push_back(wr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(joins.size(), 4u);
  for (const WindowResult& wr : joins) {
    EXPECT_EQ(wr.tuples.size(), 5u) << "window ending " << wr.t;
  }

  // Audit 4: the full spool matches everything ingested.
  auto all = server.ScanHistory("Stocks", kMinTimestamp, kMaxTimestamp);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 88u);  // 44 days x 2 symbols
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, PSoupOverGeneratorAgreesWithServerHistory) {
  // The same generated stream fed to (a) PSoup and (b) a spooling server;
  // PSoup's materialized answers must equal filtering the server's spool.
  std::string dir = testing::TempDir() + "/tcq_integration2";
  std::filesystem::create_directories(dir);
  TelegraphCQ::Options opts;
  opts.spool_dir = dir;
  TelegraphCQ server(opts);
  ASSERT_TRUE(server
                  .DefineStream("Sensors",
                                {{"timestamp", ValueType::kTimestamp, 0},
                                 {"sensorId", ValueType::kInt64, 0},
                                 {"temperature", ValueType::kDouble, 0}})
                  .ok());
  server.Start();

  PSoup psoup;
  psoup.RegisterStream(0, SensorGenerator::MakeSchema(0));
  PSoupQuery hot;
  hot.where.filters.push_back(
      {{0, "temperature"}, CmpOp::kGt, Value::Double(20.0)});
  hot.window = 0;
  auto qid = psoup.Register(hot);
  ASSERT_TRUE(qid.ok());

  SensorGenerator gen("s", 0,
                      SensorGenerator::Options{.num_sensors = 6,
                                               .drift = 0.5,
                                               .seed = 5,
                                               .count = 800});
  Tuple t;
  Timestamp now = 0;
  while (gen.Next(&t)) {
    psoup.Ingest(0, t);
    ASSERT_TRUE(server.Push("Sensors", t.values(), t.timestamp()).ok());
    now = std::max(now, t.timestamp());
  }

  auto psoup_answer = psoup.Invoke(*qid, now);
  ASSERT_TRUE(psoup_answer.ok());
  auto spool = server.ScanHistory("Sensors", kMinTimestamp, kMaxTimestamp);
  ASSERT_TRUE(spool.ok());
  size_t spool_hot = 0;
  for (const Tuple& x : *spool) {
    if (x.Get("temperature").AsDouble() > 20.0) ++spool_hot;
  }
  EXPECT_EQ(psoup_answer->size(), spool_hot);
  server.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tcq
