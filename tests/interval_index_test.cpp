// Tests for the centered interval tree behind grouped-filter ranges,
// including an exhaustive brute-force property sweep and the AddRange
// integration (grouped filter + shared eddy).

#include <gtest/gtest.h>

#include "cacq/shared_eddy.h"
#include "common/rng.h"
#include "operators/grouped_filter.h"
#include "operators/interval_index.h"
#include "reference/reference.h"

namespace tcq {
namespace {

std::vector<QueryId> Stab(const IntervalIndex& index, int64_t v) {
  QuerySet out;
  index.Stab(Value::Int64(v), &out);
  return out.ToVector();
}

TEST(IntervalIndexTest, BasicStab) {
  IntervalIndex index;
  index.Add({Value::Int64(10), true, Value::Int64(20), true, 1});
  index.Add({Value::Int64(15), true, Value::Int64(30), true, 2});
  index.Add({Value::Int64(40), true, Value::Int64(50), true, 3});
  EXPECT_EQ(Stab(index, 12), (std::vector<QueryId>{1}));
  EXPECT_EQ(Stab(index, 18), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Stab(index, 25), (std::vector<QueryId>{2}));
  EXPECT_EQ(Stab(index, 45), (std::vector<QueryId>{3}));
  EXPECT_TRUE(Stab(index, 35).empty());
  EXPECT_TRUE(Stab(index, 5).empty());
}

TEST(IntervalIndexTest, InclusivityAtEndpoints) {
  IntervalIndex index;
  index.Add({Value::Int64(10), false, Value::Int64(20), false, 1});
  index.Add({Value::Int64(10), true, Value::Int64(20), true, 2});
  EXPECT_EQ(Stab(index, 10), (std::vector<QueryId>{2}));
  EXPECT_EQ(Stab(index, 20), (std::vector<QueryId>{2}));
  EXPECT_EQ(Stab(index, 15), (std::vector<QueryId>{1, 2}));
}

TEST(IntervalIndexTest, PointIntervalsAndNesting) {
  IntervalIndex index;
  index.Add({Value::Int64(7), true, Value::Int64(7), true, 1});   // point
  index.Add({Value::Int64(0), true, Value::Int64(100), true, 2});  // covers
  EXPECT_EQ(Stab(index, 7), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Stab(index, 8), (std::vector<QueryId>{2}));
}

TEST(IntervalIndexTest, RemoveAndCompact) {
  IntervalIndex index;
  index.Add({Value::Int64(0), true, Value::Int64(10), true, 1});
  index.Add({Value::Int64(0), true, Value::Int64(10), true, 2});
  index.Remove(1);
  EXPECT_EQ(Stab(index, 5), (std::vector<QueryId>{2}));
  EXPECT_EQ(index.size(), 2u);  // lazily retained
  index.Compact();
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(Stab(index, 5), (std::vector<QueryId>{2}));
}

TEST(IntervalIndexTest, MatchesBruteForceProperty) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    IntervalIndex index;
    struct Iv {
      int64_t lo, hi;
      bool li, hi_i;
    };
    std::vector<Iv> ivs;
    size_t n = static_cast<size_t>(rng.UniformInt(1, 200));
    for (QueryId q = 0; q < n; ++q) {
      int64_t lo = rng.UniformInt(0, 1000);
      int64_t hi = lo + rng.UniformInt(0, 200);
      bool li = rng.Bernoulli(0.5), hi_i = rng.Bernoulli(0.5);
      ivs.push_back({lo, hi, li, hi_i});
      index.Add({Value::Int64(lo), li, Value::Int64(hi), hi_i, q});
    }
    for (int probe = 0; probe < 200; ++probe) {
      int64_t v = rng.UniformInt(-10, 1210);
      QuerySet got;
      index.Stab(Value::Int64(v), &got);
      for (QueryId q = 0; q < n; ++q) {
        const Iv& iv = ivs[q];
        bool expect = (v > iv.lo || (v == iv.lo && iv.li)) &&
                      (v < iv.hi || (v == iv.hi && iv.hi_i));
        EXPECT_EQ(got.Contains(q), expect)
            << "trial " << trial << " v=" << v << " q=" << q;
      }
    }
  }
}

TEST(IntervalIndexTest, DoubleKeys) {
  IntervalIndex index;
  index.Add({Value::Double(0.5), true, Value::Double(1.5), true, 1});
  QuerySet out;
  index.Stab(Value::Double(1.0), &out);
  EXPECT_TRUE(out.Contains(1));
  out = QuerySet();
  index.Stab(Value::Double(2.0), &out);
  EXPECT_TRUE(out.Empty());
}

// --- GroupedFilter::AddRange integration -------------------------------------

TEST(GroupedFilterRangeTest, AddRangeCountsAsOneFactor) {
  GroupedFilter gf({0, "k"});
  gf.AddRange(1, Value::Int64(10), true, Value::Int64(20), true);
  QuerySet out;
  gf.Match(Value::Int64(15), &out);
  EXPECT_TRUE(out.Contains(1));
  out = QuerySet();
  gf.Match(Value::Int64(25), &out);
  EXPECT_TRUE(out.Empty());
  EXPECT_EQ(gf.num_factors(), 1u);
}

TEST(GroupedFilterRangeTest, RangePlusEqualityConjunction) {
  // Query 1 needs k in [0, 100] AND k = 50 (both factors must hold).
  GroupedFilter gf({0, "k"});
  gf.AddRange(1, Value::Int64(0), true, Value::Int64(100), true);
  gf.AddFactor(1, CmpOp::kEq, Value::Int64(50));
  QuerySet out;
  gf.Match(Value::Int64(50), &out);
  EXPECT_TRUE(out.Contains(1));
  out = QuerySet();
  gf.Match(Value::Int64(60), &out);  // in range, fails equality
  EXPECT_TRUE(out.Empty());
}

TEST(GroupedFilterRangeTest, RemoveQueryDropsRanges) {
  GroupedFilter gf({0, "k"});
  gf.AddRange(1, Value::Int64(0), true, Value::Int64(100), true);
  gf.AddRange(2, Value::Int64(0), true, Value::Int64(100), true);
  gf.RemoveQuery(1);
  QuerySet out;
  gf.Match(Value::Int64(50), &out);
  EXPECT_EQ(out.ToVector(), (std::vector<QueryId>{2}));
  gf.Compact();
  gf.Match(Value::Int64(50), &out);
  EXPECT_EQ(out.ToVector(), (std::vector<QueryId>{2}));
}

TEST(GroupedFilterRangeTest, SharedEddyPairsRangeFactors) {
  // The shared eddy detects a query's ge+le pair on one attribute and
  // registers it as one interval; results are unchanged.
  SchemaRef sch = Schema::Make({{"k", ValueType::kInt64, 0}});
  SharedEddy eddy(MakeLotteryPolicy(1));
  eddy.RegisterStream(0, sch);
  std::map<QueryId, size_t> hits;
  eddy.SetOutput([&](QueryId q, const Tuple&) { ++hits[q]; });

  CQSpec range_q;
  range_q.filters.push_back({{0, "k"}, CmpOp::kGe, Value::Int64(10)});
  range_q.filters.push_back({{0, "k"}, CmpOp::kLe, Value::Int64(20)});
  auto q1 = eddy.AddQuery(range_q);
  ASSERT_TRUE(q1.ok());

  CQSpec mixed_q;  // three factors: not pairable
  mixed_q.filters.push_back({{0, "k"}, CmpOp::kGe, Value::Int64(0)});
  mixed_q.filters.push_back({{0, "k"}, CmpOp::kLe, Value::Int64(50)});
  mixed_q.filters.push_back({{0, "k"}, CmpOp::kNe, Value::Int64(15)});
  auto q2 = eddy.AddQuery(mixed_q);
  ASSERT_TRUE(q2.ok());

  for (int64_t k = 0; k <= 60; ++k) {
    eddy.Ingest(0, Tuple::Make(sch, {Value::Int64(k)}, k));
  }
  EXPECT_EQ(hits[*q1], 11u);  // 10..20
  EXPECT_EQ(hits[*q2], 50u);  // 0..50 minus k=15
}

TEST(SharedEddyTest, DisconnectedMultiStreamQueryRejected) {
  SchemaRef s0 = Schema::Make({{"k", ValueType::kInt64, 0}});
  SchemaRef s1 = Schema::Make({{"k", ValueType::kInt64, 1}});
  SharedEddy eddy(MakeLotteryPolicy(1));
  eddy.RegisterStream(0, s0);
  eddy.RegisterStream(1, s1);
  // Cross-source residual without an equality edge: not executable.
  CQSpec spec;
  spec.residuals.push_back(
      MakeCompareAttrs({0, "k"}, CmpOp::kGt, {1, "k"}));
  auto r = eddy.AddQuery(spec);
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST(SharedEddyTest, ThreeWayJoinSharedMatchesReference) {
  using testref::CanonicalMultiset;
  using testref::NaiveJoin;
  auto sch = [](SourceId s) {
    return Schema::Make({{"k", ValueType::kInt64, s},
                         {"v", ValueType::kInt64, s}});
  };
  SharedEddy eddy(MakeLotteryPolicy(5));
  for (SourceId s = 0; s < 3; ++s) eddy.RegisterStream(s, sch(s));
  std::vector<Tuple> results;
  eddy.SetOutput([&](QueryId, const Tuple& t) { results.push_back(t); });

  CQSpec spec;  // chain: S0.k = S1.k, S1.v = S2.k
  spec.joins.push_back({{0, "k"}, {1, "k"}});
  spec.joins.push_back({{1, "v"}, {2, "k"}});
  ASSERT_TRUE(eddy.AddQuery(spec).ok());

  Rng rng(9);
  std::vector<std::vector<Tuple>> streams(3);
  for (int i = 0; i < 50; ++i) {
    for (SourceId s = 0; s < 3; ++s) {
      Tuple t = Tuple::Make(sch(s),
                            {Value::Int64(rng.UniformInt(0, 7)),
                             Value::Int64(rng.UniformInt(0, 7))},
                            i);
      streams[s].push_back(t);
      eddy.Ingest(s, t);
    }
  }
  auto expected = NaiveJoin(
      streams, {MakeCompareAttrs({0, "k"}, CmpOp::kEq, {1, "k"}),
                MakeCompareAttrs({1, "v"}, CmpOp::kEq, {2, "k"})});
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(CanonicalMultiset(results), CanonicalMultiset(expected));
}

}  // namespace
}  // namespace tcq
