// Tests for the unified metrics layer: instrument semantics, histogram
// bucketing, snapshot/text export, and multi-threaded counting.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.h"

namespace tcq {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("tcq_test_events_total");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->Value(), 5u);

  Gauge* g = reg.GetGauge("tcq_test_depth");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 5);

  // Same name returns the same instrument (aggregation on collision).
  EXPECT_EQ(reg.GetCounter("tcq_test_events_total"), c);
  EXPECT_EQ(reg.GetGauge("tcq_test_depth"), g);
}

TEST(MetricsTest, HistogramBucketing) {
  Histogram h;
  h.Observe(0);    // bucket le=1
  h.Observe(1);    // bucket le=1
  h.Observe(2);    // bucket le=3
  h.Observe(3);    // bucket le=3
  h.Observe(100);  // bucket le=127
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 106u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(0)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(2)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketFor(100)), 1u);
  // Huge values land in the +inf bucket.
  h.Observe(UINT64_MAX);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets), 1u);
}

TEST(MetricsTest, SnapshotAndLookup) {
  MetricsRegistry reg;
  reg.GetCounter("tcq_a_total")->Inc(3);
  reg.GetGauge("tcq_b")->Set(-1);
  reg.GetHistogram("tcq_lat_us")->Observe(5);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("tcq_a_total"), 3u);
  EXPECT_EQ(snap.CounterValue("tcq_missing"), 0u);
  EXPECT_EQ(snap.GaugeValue("tcq_b"), -1);
  const auto* h = snap.FindHistogram("tcq_lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 5u);
}

TEST(MetricsTest, CounterFamilySumAggregatesLabels) {
  MetricsRegistry reg;
  reg.GetCounter(MetricName("tcq_stem_builds_total", "stem", "s0"))->Inc(2);
  reg.GetCounter(MetricName("tcq_stem_builds_total", "stem", "s1"))->Inc(3);
  reg.GetCounter("tcq_other_total")->Inc(9);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterFamilySum("tcq_stem_builds_total"), 5u);
}

TEST(MetricsTest, FormatTextExport) {
  MetricsRegistry reg;
  reg.GetCounter("tcq_events_total")->Inc(2);
  reg.GetGauge(MetricName("tcq_depth", "queue", "q0"))->Set(4);
  Histogram* h = reg.GetHistogram("tcq_wait_us");
  h->Observe(1);
  h->Observe(2);

  Histogram* labeled =
      reg.GetHistogram(MetricName("tcq_lat_us", "queue", "q0"));
  labeled->Observe(1);

  std::string text = reg.FormatText();
  EXPECT_NE(text.find("tcq_events_total 2"), std::string::npos);
  EXPECT_NE(text.find("tcq_depth{queue=\"q0\"} 4"), std::string::npos);
  EXPECT_NE(text.find("tcq_wait_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("tcq_wait_us_sum 3"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\""), std::string::npos);
  // Labeled histograms splice the suffix before the labels and merge le in.
  EXPECT_NE(text.find("tcq_lat_us_count{queue=\"q0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tcq_lat_us_bucket{queue=\"q0\",le=\"1\"} 1"),
            std::string::npos);
}

TEST(MetricsTest, ApproxQuantileIsMonotone) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("tcq_q_us");
  for (uint64_t v = 0; v < 1000; ++v) h->Observe(v);
  MetricsSnapshot snap = reg.Snapshot();
  const auto* data = snap.FindHistogram("tcq_q_us");
  ASSERT_NE(data, nullptr);
  uint64_t p50 = data->ApproxQuantile(0.5);
  uint64_t p99 = data->ApproxQuantile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p99, 511u);  // 99th percentile of 0..999 is >= bucket le=1023
}

TEST(MetricsTest, ConcurrentCountingIsExact) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("tcq_mt_total");
  Histogram* h = reg.GetHistogram("tcq_mt_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Observe(static_cast<uint64_t>(i % 64));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, FormatTextEscapesLabelValues) {
  MetricsRegistry reg;
  reg.GetGauge(MetricName("tcq_depth", "queue", "a\\b\"c\nd"))->Set(1);
  std::string text = reg.FormatText();
  // Backslash, quote, and newline must appear escaped per the Prometheus
  // exposition format, keeping the line parseable.
  EXPECT_NE(text.find("tcq_depth{queue=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("c\nd"), std::string::npos);
}

// Counts non-overlapping occurrences of `needle` in `hay`.
size_t CountOf(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(MetricsTest, FormatTextEmitsOneHeaderPerFamily) {
  MetricsRegistry reg;
  reg.GetCounter(MetricName("tcq_stem_builds_total", "stem", "s0"))->Inc();
  reg.GetCounter(MetricName("tcq_stem_builds_total", "stem", "s1"))->Inc();
  Histogram* h0 = reg.GetHistogram(MetricName("tcq_lat_us", "queue", "q0"));
  Histogram* h1 = reg.GetHistogram(MetricName("tcq_lat_us", "queue", "q1"));
  h0->Observe(1);
  h1->Observe(2);
  std::string text = reg.FormatText();
  EXPECT_EQ(CountOf(text, "# TYPE tcq_stem_builds_total counter"), 1u);
  EXPECT_EQ(CountOf(text, "# HELP tcq_stem_builds_total"), 1u);
  // Histogram headers attach to the base family, not the _bucket/_count
  // series or each labeled instance.
  EXPECT_EQ(CountOf(text, "# TYPE tcq_lat_us histogram"), 1u);
  EXPECT_EQ(CountOf(text, "# TYPE tcq_lat_us_bucket"), 0u);
  // Both labeled series still rendered.
  EXPECT_EQ(CountOf(text, "tcq_stem_builds_total{stem="), 1u * 2);
}

TEST(MetricsTest, SnapshotDerivesQuantiles) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("tcq_q_us");
  for (uint64_t v = 0; v < 1000; ++v) h->Observe(v);
  MetricsSnapshot snap = reg.Snapshot();
  const auto* data = snap.FindHistogram("tcq_q_us");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->p50, data->ApproxQuantile(0.5));
  EXPECT_EQ(data->p95, data->ApproxQuantile(0.95));
  EXPECT_EQ(data->p99, data->ApproxQuantile(0.99));
  EXPECT_LE(data->p50, data->p95);
  EXPECT_LE(data->p95, data->p99);
  // Interpolated p50 of uniform 0..999 lands near 500, well inside the
  // covering bucket (256, 511] rather than pinned to its edge.
  EXPECT_GE(data->p50, 400u);
  EXPECT_LE(data->p50, 600u);
}

TEST(MetricsTest, PrivateRegistryFallback) {
  MetricsRegistryRef shared = std::make_shared<MetricsRegistry>();
  EXPECT_EQ(OrPrivateRegistry(shared), shared);
  MetricsRegistryRef private_reg = OrPrivateRegistry(nullptr);
  ASSERT_NE(private_reg, nullptr);
  EXPECT_NE(private_reg, shared);
}

}  // namespace
}  // namespace tcq
