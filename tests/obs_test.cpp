// Observability tests (DESIGN.md §9): span ordering through the live
// pipeline, deterministic sampling, flight-recorder wraparound, and the
// self-monitoring loop — a windowed CQ over the engine's own tcq$queues
// introspection stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "obs/system_streams.h"
#include "obs/trace.h"
#include "server/telegraphcq.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

void PushStocks(TelegraphCQ* server, Timestamp from, Timestamp to) {
  for (Timestamp d = from; d <= to; ++d) {
    ASSERT_TRUE(server
                    ->Push("ClosingStockPrices",
                           {Value::TimestampVal(d), Value::String("MSFT"),
                            Value::Double(50.0)},
                           d)
                    .ok());
  }
}

size_t DrainCount(PushEgress* egress, size_t expected, int patience_ms) {
  size_t got = 0;
  Delivery d;
  for (int waited = 0; waited < patience_ms; ++waited) {
    while (egress->Poll(&d)) ++got;
    if (got >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return got;
}

// Earliest start time of `kind` in the dump, or -1 if absent.
int64_t FirstStart(const std::vector<obs::Span>& spans, obs::SpanKind kind) {
  int64_t best = -1;
  for (const obs::Span& s : spans) {
    if (s.kind == kind && (best < 0 || s.start_us < best)) best = s.start_us;
  }
  return best;
}

TEST(TraceTest, SpansOrderedWithinBatchThroughTheServer) {
  TelegraphCQ::Options opts;
  opts.trace.enabled = true;
  opts.trace.sample_period = 1;  // every batch
  TelegraphCQ server(opts);
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();
  PushStocks(&server, 1, 20);
  ASSERT_EQ(DrainCount(handle->results.get(), 20, 2000), 20u);
  server.Stop();

  std::vector<obs::Span> spans = server.DumpFlightRecorder();
  ASSERT_FALSE(spans.empty());
  int64_t enq = FirstStart(spans, obs::SpanKind::kQueueEnqueue);
  int64_t wait = FirstStart(spans, obs::SpanKind::kQueueWait);
  int64_t hop = FirstStart(spans, obs::SpanKind::kEddyHop);
  int64_t emit = FirstStart(spans, obs::SpanKind::kEgressEmit);
  int64_t e2e = FirstStart(spans, obs::SpanKind::kEndToEnd);
  ASSERT_GE(enq, 0) << "no enqueue span";
  ASSERT_GE(wait, 0) << "no queue-wait span";
  ASSERT_GE(hop, 0) << "no routing-hop span";
  ASSERT_GE(emit, 0) << "no egress-emit span";
  ASSERT_GE(e2e, 0) << "no end-to-end span";
  // A tuple is enqueued, waits in the fjord, is routed, then emitted:
  // earliest occurrences must respect pipeline order.
  EXPECT_LE(enq, wait);
  EXPECT_LE(wait, hop);
  EXPECT_LE(hop, emit);
  for (const obs::Span& s : spans) EXPECT_GE(s.dur_us, 0);

  // Aggregates landed in the shared registry alongside the raw spans.
  MetricsSnapshot snap = server.metrics()->Snapshot();
  EXPECT_NE(snap.FindHistogram("tcq_trace_span_us{stage=\"hop\"}"), nullptr);
  EXPECT_NE(snap.FindHistogram("tcq_trace_eddy_hops"), nullptr);
  EXPECT_GT(server.tracer()->batches_sampled(), 0u);
}

TEST(TraceTest, SamplingIsDeterministicForAGivenSeed) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.sample_period = 8;
  opts.seed = 123;
  obs::Tracer a(opts);
  obs::Tracer b(opts);
  std::vector<bool> seq_a, seq_b;
  for (int i = 0; i < 512; ++i) seq_a.push_back(a.ShouldSample());
  for (int i = 0; i < 512; ++i) seq_b.push_back(b.ShouldSample());
  EXPECT_EQ(seq_a, seq_b);
  size_t hits = static_cast<size_t>(
      std::count(seq_a.begin(), seq_a.end(), true));
  // 1-in-8 Bernoulli over 512 trials: expect ~64, assert a loose band.
  EXPECT_GT(hits, 20u);
  EXPECT_LT(hits, 160u);

  opts.seed = 124;
  obs::Tracer c(opts);
  std::vector<bool> seq_c;
  for (int i = 0; i < 512; ++i) seq_c.push_back(c.ShouldSample());
  EXPECT_NE(seq_a, seq_c);

  opts.sample_period = 1;
  obs::Tracer all(opts);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(all.ShouldSample());

  obs::Tracer off(obs::TraceOptions{});  // disabled by default
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(off.ShouldSample());
}

TEST(TraceTest, FlightRecorderRingWrapsKeepingNewestSpans) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.sample_period = 1;
  opts.ring_capacity = 8;
  obs::Tracer tracer(opts);
  for (int64_t i = 0; i < 100; ++i) {
    tracer.Record(obs::SpanKind::kEddyHop, 0, 0, /*start_us=*/i,
                  /*dur_us=*/1);
  }
  std::vector<obs::Span> spans = tracer.DumpFlightRecorder();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_us, static_cast<int64_t>(92 + i));
  }
  EXPECT_EQ(tracer.spans_recorded(), 100u);
}

TEST(TraceTest, DisabledTracerRecordsNothingThroughTheScope) {
  obs::Tracer tracer(obs::TraceOptions{});  // enabled = false
  {
    obs::TraceBatchScope scope(&tracer);
    EXPECT_FALSE(scope.sampled());
    EXPECT_EQ(obs::CurrentTrace().tracer, nullptr);
  }
  EXPECT_EQ(tracer.batches_sampled(), 0u);
  EXPECT_TRUE(tracer.DumpFlightRecorder().empty());
}

TEST(SystemStreamTest, ReservedNamesAreRejectedForUsers) {
  TelegraphCQ server;
  auto r = server.DefineStream("tcq$mine", StockFields());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST(SystemStreamTest, WindowedQueryOverTcqQueuesFiresUnderLoad) {
  TelegraphCQ::Options opts;
  opts.trace.enabled = true;
  opts.trace.sample_period = 1;
  opts.system_streams.enabled = true;
  opts.system_streams.publish_interval_ms = 5;
  TelegraphCQ server(opts);

  // The reserved streams exist before Start and are queryable like any
  // other stream.
  ASSERT_TRUE(server.catalog().Lookup("tcq$queues").ok());
  ASSERT_TRUE(server.catalog().Lookup("tcq$metrics").ok());
  ASSERT_TRUE(server.catalog().Lookup("tcq$latency").ok());

  // Load: a user stream with a continuous query, so an exec:s* fjord sees
  // traffic the introspection rows can report.
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto cq = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(cq.ok()) << cq.status();

  // The engine watching itself: tumbling one-tick windows over the queue
  // snapshots (ticks are the publish-round logical timestamps).
  auto watch = server.Submit(
      "SELECT * FROM tcq$queues "
      "for (t = 2; t <= 200; t += 1) { WindowIs(tcq$queues, t - 1, t); }");
  ASSERT_TRUE(watch.ok()) << watch.status();
  ASSERT_NE(watch->windows, nullptr);

  server.Start();

  std::vector<WindowResult> fired;
  int64_t max_exec_enqueued = -1;
  std::string busiest_queue;
  Timestamp day = 1;
  for (int i = 0; i < 5000 && fired.size() < 5; ++i) {
    // Keep pushing so queue counters keep moving while windows fire.
    PushStocks(&server, day, day + 4);
    day += 5;
    WindowResult wr;
    while (watch->windows->Poll(&wr)) fired.push_back(std::move(wr));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  ASSERT_GE(fired.size(), 5u) << "introspection windows never fired";
  size_t rows = 0;
  for (const WindowResult& wr : fired) {
    for (const Tuple& t : wr.tuples) {
      ++rows;
      ASSERT_EQ(t.num_fields(), 5u);
      std::string queue = t.Get("queue").AsString();
      int64_t enqueued = t.Get("enqueued").AsInt64();
      int64_t depth = t.Get("depth").AsInt64();
      int64_t dropped = t.Get("dropped").AsInt64();
      EXPECT_GE(enqueued, 0);
      EXPECT_GE(depth, 0);
      EXPECT_GE(dropped, 0);
      // Windowed max of enqueued over executor fjords, computed client-side.
      if (queue.rfind("exec:", 0) == 0 && enqueued > max_exec_enqueued) {
        max_exec_enqueued = enqueued;
        busiest_queue = queue;
      }
    }
  }
  EXPECT_GT(rows, 0u) << "windows fired but carried no queue rows";
  // Plausibility: the user stream's executor fjord really saw tuples.
  EXPECT_GT(max_exec_enqueued, 0) << "no exec:* queue reported traffic";
  EXPECT_FALSE(busiest_queue.empty());
}

TEST(SystemStreamTest, PublishOnceRendersAllThreeStreams) {
  auto metrics = std::make_shared<MetricsRegistry>();
  metrics->GetCounter("tcq_events_total")->Inc(3);
  metrics->GetGauge(MetricName("tcq_queue_depth", "queue", "q0"))->Set(2);
  metrics
      ->GetCounter(MetricName("tcq_queue_enqueued_total", "queue", "q0"))
      ->Inc(7);
  metrics->GetHistogram(MetricName("tcq_queue_wait_us", "queue", "q0"))
      ->Observe(11);

  std::map<std::string, std::vector<obs::SystemStreamSource::Row>> got;
  Timestamp last_tick = 0;
  obs::SystemStreamSource source(
      obs::SystemStreamOptions{}, metrics, nullptr,
      [&](const std::string& stream,
          std::vector<obs::SystemStreamSource::Row> rows, Timestamp tick) {
        got[stream] = std::move(rows);
        last_tick = tick;
      });
  source.PublishOnce();
  EXPECT_EQ(last_tick, 1);
  EXPECT_EQ(source.ticks(), 1u);

  ASSERT_TRUE(got.contains(obs::SystemStreamSource::kMetricsStream));
  ASSERT_TRUE(got.contains(obs::SystemStreamSource::kQueuesStream));
  ASSERT_TRUE(got.contains(obs::SystemStreamSource::kLatencyStream));

  // The q0 fjord's joined row: depth 2, enqueued 7, no drops.
  bool found_q0 = false;
  for (const auto& row : got[obs::SystemStreamSource::kQueuesStream]) {
    ASSERT_EQ(row.values.size(), 5u);
    if (row.values[0].AsString() == "q0") {
      found_q0 = true;
      EXPECT_EQ(row.values[1].AsInt64(), 2);  // depth
      EXPECT_EQ(row.values[2].AsInt64(), 7);  // enqueued
      EXPECT_EQ(row.values[3].AsInt64(), 0);  // dropped
    }
  }
  EXPECT_TRUE(found_q0);

  bool found_counter = false;
  for (const auto& row : got[obs::SystemStreamSource::kMetricsStream]) {
    if (row.values[0].AsString() == "tcq_events_total") {
      found_counter = true;
      EXPECT_EQ(row.values[1].AsString(), "counter");
      EXPECT_EQ(row.values[2].AsInt64(), 3);
    }
  }
  EXPECT_TRUE(found_counter);
}

}  // namespace
}  // namespace tcq
