// Tests for the remaining query modules: grouped filters (shared predicate
// indexes), windowed aggregation, duplicate elimination, and juggle.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "operators/aggregate.h"
#include "operators/dup_elim.h"
#include "operators/grouped_filter.h"
#include "operators/juggle.h"

namespace tcq {
namespace {

SchemaRef Sch() {
  return Schema::Make({
      {"k", ValueType::kInt64, 0},
      {"v", ValueType::kInt64, 0},
  });
}

Tuple Row(int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(), {Value::Int64(k), Value::Int64(v)}, ts);
}

// --- GroupedFilter ----------------------------------------------------------

std::vector<QueryId> Matches(const GroupedFilter& gf, int64_t v) {
  QuerySet out;
  gf.Match(Value::Int64(v), &out);
  return out.ToVector();
}

TEST(GroupedFilterTest, EqualityFactors) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kEq, Value::Int64(10));
  gf.AddFactor(2, CmpOp::kEq, Value::Int64(10));
  gf.AddFactor(3, CmpOp::kEq, Value::Int64(20));
  EXPECT_EQ(Matches(gf, 10), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Matches(gf, 20), (std::vector<QueryId>{3}));
  EXPECT_TRUE(Matches(gf, 30).empty());
}

TEST(GroupedFilterTest, InequalityFactors) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kNe, Value::Int64(5));
  EXPECT_EQ(Matches(gf, 4), (std::vector<QueryId>{1}));
  EXPECT_TRUE(Matches(gf, 5).empty());
}

TEST(GroupedFilterTest, LowerBounds) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kGt, Value::Int64(10));
  gf.AddFactor(2, CmpOp::kGe, Value::Int64(10));
  gf.AddFactor(3, CmpOp::kGt, Value::Int64(50));
  EXPECT_TRUE(Matches(gf, 9).empty());
  EXPECT_EQ(Matches(gf, 10), (std::vector<QueryId>{2}));  // only >= matches
  EXPECT_EQ(Matches(gf, 11), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Matches(gf, 51), (std::vector<QueryId>{1, 2, 3}));
}

TEST(GroupedFilterTest, UpperBounds) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kLt, Value::Int64(10));
  gf.AddFactor(2, CmpOp::kLe, Value::Int64(10));
  EXPECT_EQ(Matches(gf, 9), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(Matches(gf, 10), (std::vector<QueryId>{2}));
  EXPECT_TRUE(Matches(gf, 11).empty());
}

TEST(GroupedFilterTest, RangeNeedsBothFactors) {
  // Query 1 wants k in [10, 20]: two factors, both must match.
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kGe, Value::Int64(10));
  gf.AddFactor(1, CmpOp::kLe, Value::Int64(20));
  EXPECT_TRUE(Matches(gf, 9).empty());
  EXPECT_EQ(Matches(gf, 10), (std::vector<QueryId>{1}));
  EXPECT_EQ(Matches(gf, 20), (std::vector<QueryId>{1}));
  EXPECT_TRUE(Matches(gf, 21).empty());
}

TEST(GroupedFilterTest, RemoveQueryExcludesImmediately) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kEq, Value::Int64(10));
  gf.AddFactor(2, CmpOp::kEq, Value::Int64(10));
  gf.RemoveQuery(1);
  EXPECT_EQ(Matches(gf, 10), (std::vector<QueryId>{2}));
  EXPECT_FALSE(gf.interested().Contains(1));
}

TEST(GroupedFilterTest, CompactReclaimsAndPreservesMatches) {
  GroupedFilter gf({0, "k"});
  for (QueryId q = 0; q < 10; ++q) {
    gf.AddFactor(q, CmpOp::kGt, Value::Int64(static_cast<int64_t>(q)));
  }
  for (QueryId q = 0; q < 10; q += 2) gf.RemoveQuery(q);
  gf.Compact();
  EXPECT_EQ(Matches(gf, 100), (std::vector<QueryId>{1, 3, 5, 7, 9}));
  EXPECT_EQ(gf.num_factors(), 5u);
}

TEST(GroupedFilterTest, ReAddAfterRemove) {
  GroupedFilter gf({0, "k"});
  gf.AddFactor(1, CmpOp::kEq, Value::Int64(10));
  gf.RemoveQuery(1);
  gf.AddFactor(1, CmpOp::kEq, Value::Int64(20));
  EXPECT_TRUE(Matches(gf, 10).empty());
  EXPECT_EQ(Matches(gf, 20), (std::vector<QueryId>{1}));
}

TEST(GroupedFilterTest, MatchesAgainstBruteForce) {
  // Property: grouped-filter answers equal per-query predicate evaluation.
  Rng rng(77);
  GroupedFilter gf({0, "k"});
  struct QueryPreds {
    std::vector<std::pair<CmpOp, int64_t>> factors;
  };
  std::vector<QueryPreds> queries(64);
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (QueryId q = 0; q < queries.size(); ++q) {
    size_t nf = static_cast<size_t>(rng.UniformInt(1, 3));
    for (size_t f = 0; f < nf; ++f) {
      CmpOp op = ops[rng.UniformInt(0, 5)];
      int64_t lit = rng.UniformInt(0, 50);
      queries[q].factors.emplace_back(op, lit);
      gf.AddFactor(q, op, Value::Int64(lit));
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    int64_t v = rng.UniformInt(0, 50);
    QuerySet got;
    gf.Match(Value::Int64(v), &got);
    for (QueryId q = 0; q < queries.size(); ++q) {
      bool expect = true;
      for (auto [op, lit] : queries[q].factors) {
        if (!EvalCmp(Value::Int64(v), op, Value::Int64(lit))) {
          expect = false;
          break;
        }
      }
      EXPECT_EQ(got.Contains(q), expect) << "v=" << v << " q=" << q;
    }
  }
}

// --- Aggregators ------------------------------------------------------------

TEST(AggregateTest, LandmarkAllFunctions) {
  auto feed = [](AggFn fn) {
    LandmarkAggregator agg(fn);
    for (int64_t v : {5, 1, 9, 3}) agg.Add(Value::Int64(v), v);
    return agg.Result();
  };
  EXPECT_EQ(feed(AggFn::kCount).AsInt64(), 4);
  EXPECT_DOUBLE_EQ(feed(AggFn::kSum).AsDouble(), 18.0);
  EXPECT_DOUBLE_EQ(feed(AggFn::kAvg).AsDouble(), 4.5);
  EXPECT_EQ(feed(AggFn::kMin).AsInt64(), 1);
  EXPECT_EQ(feed(AggFn::kMax).AsInt64(), 9);
}

TEST(AggregateTest, EmptyAggregates) {
  LandmarkAggregator count(AggFn::kCount);
  EXPECT_EQ(count.Result().AsInt64(), 0);
  LandmarkAggregator max(AggFn::kMax);
  EXPECT_TRUE(max.Result().is_null());
  SlidingAggregator ssum(AggFn::kSum, 10);
  EXPECT_TRUE(ssum.Result().is_null());
}

TEST(AggregateTest, LandmarkStateIsConstant) {
  LandmarkAggregator agg(AggFn::kMax);
  size_t before = agg.StateBytes();
  for (int i = 0; i < 10000; ++i) agg.Add(Value::Int64(i), i);
  EXPECT_EQ(agg.StateBytes(), before);  // the paper's O(1) landmark claim
}

TEST(AggregateTest, SlidingMaxTracksWindow) {
  SlidingAggregator agg(AggFn::kMax, 10);
  agg.Add(Value::Int64(100), 1);  // max now, expires at t=11
  agg.Add(Value::Int64(5), 8);
  EXPECT_DOUBLE_EQ(agg.Result().AsDouble(), 100.0);
  agg.AdvanceTime(12);  // 100 expired
  EXPECT_DOUBLE_EQ(agg.Result().AsDouble(), 5.0);
  agg.AdvanceTime(19);  // 5 expired too
  EXPECT_TRUE(agg.Result().is_null());
}

TEST(AggregateTest, SlidingSumAndCount) {
  SlidingAggregator sum(AggFn::kSum, 5);
  SlidingAggregator cnt(AggFn::kCount, 5);
  for (Timestamp t = 1; t <= 10; ++t) {
    sum.Add(Value::Int64(t), t);
    cnt.Add(Value::Int64(t), t);
    sum.AdvanceTime(t);
    cnt.AdvanceTime(t);
  }
  // Window (5, 10]: values 6..10.
  EXPECT_DOUBLE_EQ(sum.Result().AsDouble(), 40.0);
  EXPECT_EQ(cnt.Result().AsInt64(), 5);
}

TEST(AggregateTest, SlidingMatchesBruteForce) {
  Rng rng(3);
  SlidingAggregator agg(AggFn::kMax, 20);
  std::vector<std::pair<Timestamp, int64_t>> history;
  for (Timestamp t = 1; t <= 500; ++t) {
    int64_t v = rng.UniformInt(0, 1000);
    history.emplace_back(t, v);
    agg.Add(Value::Int64(v), t);
    agg.AdvanceTime(t);
    int64_t expect = -1;
    for (auto [ts, hv] : history) {
      if (ts > t - 20) expect = std::max(expect, hv);
    }
    EXPECT_DOUBLE_EQ(agg.Result().AsDouble(), static_cast<double>(expect));
  }
}

TEST(AggregateTest, SlidingStateGrowsWithWindow) {
  SlidingAggregator narrow(AggFn::kMax, 10);
  SlidingAggregator wide(AggFn::kMax, 1000);
  Rng rng(5);
  for (Timestamp t = 1; t <= 2000; ++t) {
    Value v = Value::Int64(rng.UniformInt(0, 1000000));
    narrow.Add(v, t);
    wide.Add(v, t);
    narrow.AdvanceTime(t);
    wide.AdvanceTime(t);
  }
  EXPECT_GT(wide.StateBytes(), narrow.StateBytes() * 10);
}

TEST(AggregateTest, GroupedAggregatePerGroup) {
  GroupedAggregate agg({AggFn::kSum, {0, "v"}, AttrRef{0, "k"}, 0});
  agg.Consume(Row(1, 10, 1));
  agg.Consume(Row(1, 20, 2));
  agg.Consume(Row(2, 5, 3));
  EXPECT_DOUBLE_EQ(agg.ResultFor(Value::Int64(1)).AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(agg.ResultFor(Value::Int64(2)).AsDouble(), 5.0);
  EXPECT_TRUE(agg.ResultFor(Value::Int64(3)).is_null());
  EXPECT_EQ(agg.num_groups(), 2u);

  auto snap = agg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first.AsInt64(), 1);
  EXPECT_DOUBLE_EQ(snap[0].second.AsDouble(), 30.0);
}

TEST(AggregateTest, GroupedGlobalWindowed) {
  GroupedAggregate agg({AggFn::kCount, {0, "v"}, std::nullopt, 10});
  agg.Consume(Row(1, 1, 1));
  agg.Consume(Row(1, 1, 5));
  agg.Consume(Row(1, 1, 14));
  agg.AdvanceTime(14);  // t=1 and t=5 expire (cutoff 4 -> only t=1)
  EXPECT_EQ(agg.GlobalResult().AsInt64(), 2);  // t=5, t=14 in (4, 14]
}

// --- DupElim ----------------------------------------------------------------

TEST(DupElimTest, DropsExactDuplicates) {
  DupElim de("dup", {});
  std::vector<Envelope> out;
  Envelope a{Row(1, 2, 1), 0, 1};
  Envelope b{Row(1, 2, 2), 0, 2};  // same values, later timestamp
  EXPECT_EQ(de.Process(a, &out), ModuleAction::kPass);
  EXPECT_EQ(de.Process(a, &out), ModuleAction::kDrop);
  EXPECT_EQ(de.Process(b, &out), ModuleAction::kPass);  // ts differs
}

TEST(DupElimTest, KeyAttrsRestrictIdentity) {
  DupElim de("dup", {.key_attrs = {{0, "k"}}});
  std::vector<Envelope> out;
  EXPECT_EQ(de.Process({Row(1, 2, 1), 0, 1}, &out), ModuleAction::kPass);
  EXPECT_EQ(de.Process({Row(1, 99, 2), 0, 2}, &out), ModuleAction::kDrop);
  EXPECT_EQ(de.Process({Row(2, 2, 3), 0, 3}, &out), ModuleAction::kPass);
  EXPECT_EQ(de.distinct_seen(), 2u);
}

TEST(DupElimTest, WindowForgetsOldKeys) {
  DupElim de("dup", {.key_attrs = {{0, "k"}}, .window = 10});
  std::vector<Envelope> out;
  EXPECT_EQ(de.Process({Row(1, 0, 1), 0, 1}, &out), ModuleAction::kPass);
  de.AdvanceTime(20);
  EXPECT_EQ(de.Process({Row(1, 0, 21), 0, 2}, &out), ModuleAction::kPass);
}

// --- Juggle -----------------------------------------------------------------

TEST(JuggleTest, DeliversHighestPriorityFirst) {
  Juggle juggle([](const Tuple& t) { return t.Get("v").ToDouble(); },
                {.capacity = 16});
  juggle.Push(Row(1, 5, 1));
  juggle.Push(Row(2, 50, 2));
  juggle.Push(Row(3, 20, 3));
  EXPECT_EQ(juggle.Pop().Get("v").AsInt64(), 50);
  EXPECT_EQ(juggle.Pop().Get("v").AsInt64(), 20);
  EXPECT_EQ(juggle.Pop().Get("v").AsInt64(), 5);
  EXPECT_FALSE(juggle.HasNext());
}

TEST(JuggleTest, FifoAmongEqualPriorities) {
  Juggle juggle([](const Tuple&) { return 1.0; }, {.capacity = 16});
  juggle.Push(Row(1, 0, 1));
  juggle.Push(Row(2, 0, 2));
  EXPECT_EQ(juggle.Pop().Get("k").AsInt64(), 1);
  EXPECT_EQ(juggle.Pop().Get("k").AsInt64(), 2);
}

TEST(JuggleTest, OverflowSpillsLowPriorityAndNothingIsLost) {
  Juggle juggle([](const Tuple& t) { return t.Get("v").ToDouble(); },
                {.capacity = 8});
  for (int64_t i = 0; i < 40; ++i) juggle.Push(Row(i, i, i));
  EXPECT_GT(juggle.spooled(), 0u);
  std::vector<int64_t> seen;
  while (juggle.HasNext()) seen.push_back(juggle.Pop().Get("v").AsInt64());
  EXPECT_EQ(seen.size(), 40u);
  std::sort(seen.begin(), seen.end());
  for (int64_t i = 0; i < 40; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace tcq
