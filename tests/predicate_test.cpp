// Tests for predicate evaluation: boolean factors, attribute resolution on
// base and concatenated tuples, null semantics, and composition.

#include <gtest/gtest.h>

#include "operators/predicate.h"
#include "operators/projection.h"
#include "tuple/tuple.h"

namespace tcq {
namespace {

SchemaRef StockSchema(SourceId source) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source},
      {"stockSymbol", ValueType::kString, source},
      {"closingPrice", ValueType::kDouble, source},
  });
}

Tuple Stock(SourceId source, Timestamp ts, const std::string& sym,
            double price) {
  return Tuple::Make(
      StockSchema(source),
      {Value::TimestampVal(ts), Value::String(sym), Value::Double(price)}, ts);
}

TEST(PredicateTest, EvalCmpAllOps) {
  Value a = Value::Int64(1), b = Value::Int64(2);
  EXPECT_TRUE(EvalCmp(a, CmpOp::kLt, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kLe, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kNe, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kEq, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kGt, b));
  EXPECT_FALSE(EvalCmp(a, CmpOp::kGe, b));
  EXPECT_TRUE(EvalCmp(a, CmpOp::kEq, a));
}

TEST(PredicateTest, NullComparisonsAreFalse) {
  EXPECT_FALSE(EvalCmp(Value::Null(), CmpOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalCmp(Value::Null(), CmpOp::kLt, Value::Int64(1)));
  EXPECT_FALSE(EvalCmp(Value::Int64(1), CmpOp::kNe, Value::Null()));
}

TEST(PredicateTest, CompareConstOnTuple) {
  // The paper's landmark example: closingPrice > 50.00.
  auto p = MakeCompareConst({0, "closingPrice"}, CmpOp::kGt,
                            Value::Double(50.0));
  EXPECT_TRUE(p->Eval(Stock(0, 1, "MSFT", 51.0)));
  EXPECT_FALSE(p->Eval(Stock(0, 2, "MSFT", 49.0)));
  EXPECT_EQ(p->sources(), SourceBit(0));
}

TEST(PredicateTest, StringEquality) {
  auto p = MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq,
                            Value::String("MSFT"));
  EXPECT_TRUE(p->Eval(Stock(0, 1, "MSFT", 51.0)));
  EXPECT_FALSE(p->Eval(Stock(0, 1, "AAPL", 51.0)));
}

TEST(PredicateTest, RangeInclusiveExclusive) {
  auto incl = MakeRange({0, "closingPrice"}, Value::Double(10.0),
                        Value::Double(20.0));
  EXPECT_TRUE(incl->Eval(Stock(0, 1, "X", 10.0)));
  EXPECT_TRUE(incl->Eval(Stock(0, 1, "X", 20.0)));
  EXPECT_FALSE(incl->Eval(Stock(0, 1, "X", 20.5)));

  auto excl = MakeRange({0, "closingPrice"}, Value::Double(10.0),
                        Value::Double(20.0), false, false);
  EXPECT_FALSE(excl->Eval(Stock(0, 1, "X", 10.0)));
  EXPECT_FALSE(excl->Eval(Stock(0, 1, "X", 20.0)));
  EXPECT_TRUE(excl->Eval(Stock(0, 1, "X", 15.0)));
}

TEST(PredicateTest, CompareAttrsAcrossSources) {
  // The paper's sliding-window join: c2.closingPrice > c1.closingPrice AND
  // c2.timestamp = c1.timestamp.
  auto price = MakeCompareAttrs({1, "closingPrice"}, CmpOp::kGt,
                                {0, "closingPrice"});
  auto time = MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq,
                               {0, "timestamp"});
  Tuple c1 = Stock(0, 5, "MSFT", 50.0);
  Tuple c2 = Stock(1, 5, "AAPL", 60.0);
  Tuple joined = Tuple::Concat(c1, c2, Schema::Concat(c1.schema(), c2.schema()));
  EXPECT_TRUE(price->Eval(joined));
  EXPECT_TRUE(time->Eval(joined));
  EXPECT_EQ(price->sources(), SourceBit(0) | SourceBit(1));

  Tuple c2_low = Stock(1, 5, "AAPL", 40.0);
  Tuple joined2 =
      Tuple::Concat(c1, c2_low, Schema::Concat(c1.schema(), c2_low.schema()));
  EXPECT_FALSE(price->Eval(joined2));
}

TEST(PredicateTest, CanEvalRequiresSpannedSources) {
  auto join = MakeCompareAttrs({1, "closingPrice"}, CmpOp::kGt,
                               {0, "closingPrice"});
  Tuple base = Stock(0, 1, "MSFT", 50.0);
  EXPECT_FALSE(join->CanEval(base));
  Tuple other = Stock(1, 1, "AAPL", 60.0);
  Tuple joined =
      Tuple::Concat(base, other, Schema::Concat(base.schema(), other.schema()));
  EXPECT_TRUE(join->CanEval(joined));
}

TEST(PredicateTest, AndOrNotComposition) {
  auto gt = MakeCompareConst({0, "closingPrice"}, CmpOp::kGt,
                             Value::Double(50.0));
  auto msft = MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq,
                               Value::String("MSFT"));
  auto both = MakeAnd({gt, msft});
  auto either = MakeOr({gt, msft});
  auto neither = MakeNot(either);

  Tuple hit = Stock(0, 1, "MSFT", 55.0);
  Tuple half = Stock(0, 1, "AAPL", 55.0);
  Tuple miss = Stock(0, 1, "AAPL", 45.0);

  EXPECT_TRUE(both->Eval(hit));
  EXPECT_FALSE(both->Eval(half));
  EXPECT_TRUE(either->Eval(half));
  EXPECT_FALSE(either->Eval(miss));
  EXPECT_TRUE(neither->Eval(miss));
  EXPECT_TRUE(MakeTrue()->Eval(miss));
}

TEST(PredicateTest, ResolveAttrHandlesDuplicatedNames) {
  Tuple a = Stock(0, 1, "MSFT", 50.0);
  Tuple b = Stock(1, 2, "AAPL", 60.0);
  Tuple joined = Tuple::Concat(a, b, Schema::Concat(a.schema(), b.schema()));
  const Value* v0 = ResolveAttr(joined, {0, "closingPrice"});
  const Value* v1 = ResolveAttr(joined, {1, "closingPrice"});
  ASSERT_NE(v0, nullptr);
  ASSERT_NE(v1, nullptr);
  EXPECT_DOUBLE_EQ(v0->AsDouble(), 50.0);
  EXPECT_DOUBLE_EQ(v1->AsDouble(), 60.0);
  EXPECT_EQ(ResolveAttr(joined, {2, "closingPrice"}), nullptr);
}

TEST(PredicateTest, ToStringIsReadable) {
  auto p = MakeAnd({MakeCompareConst({0, "closingPrice"}, CmpOp::kGt,
                                     Value::Double(50.0)),
                    MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq,
                                     {0, "timestamp"})});
  EXPECT_EQ(p->ToString(),
            "(s0.closingPrice > 50 AND s1.timestamp = s0.timestamp)");
}

TEST(ProjectionTest, ProjectsSubsetInOrder) {
  Projection proj({{0, "closingPrice"}, {0, "stockSymbol"}});
  Tuple t = Stock(0, 3, "MSFT", 51.0);
  auto r = proj.Apply(t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_fields(), 2u);
  EXPECT_DOUBLE_EQ(r->at(0).AsDouble(), 51.0);
  EXPECT_EQ(r->at(1).AsString(), "MSFT");
  EXPECT_EQ(r->timestamp(), 3);
}

TEST(ProjectionTest, MissingAttributeIsError) {
  Projection proj({{0, "volume"}});
  auto r = proj.Apply(Stock(0, 3, "MSFT", 51.0));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ProjectionTest, WorksAcrossJoinedFormats) {
  Projection proj({{1, "stockSymbol"}});
  Tuple a = Stock(0, 1, "MSFT", 50.0);
  Tuple b = Stock(1, 2, "AAPL", 60.0);
  Tuple ab = Tuple::Concat(a, b, Schema::Concat(a.schema(), b.schema()));
  Tuple ba = Tuple::Concat(b, a, Schema::Concat(b.schema(), a.schema()));
  EXPECT_EQ(proj.Apply(ab)->at(0).AsString(), "AAPL");
  EXPECT_EQ(proj.Apply(ba)->at(0).AsString(), "AAPL");
}

}  // namespace
}  // namespace tcq
