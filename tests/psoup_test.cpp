// PSoup tests (paper §3.2): new queries over old data, old queries over new
// data, cross-boundary joins, windowed invocation for disconnected clients,
// and equivalence between materialized retrieval and full recomputation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "psoup/psoup.h"
#include "reference/reference.h"

namespace tcq {
namespace {

using testref::CanonicalMultiset;

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"v", ValueType::kInt64, source},
  });
}

Tuple Row(SourceId source, int64_t k, int64_t v, Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::Int64(v)}, ts);
}

PSoupQuery FilterQuery(int64_t k_below, Timestamp window = 0) {
  PSoupQuery q;
  q.where.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(k_below)});
  q.window = window;
  return q;
}

TEST(PSoupTest, NewDataAppliedToOldQueries) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  auto q = psoup.Register(FilterQuery(50));
  ASSERT_TRUE(q.ok());

  for (Timestamp t = 1; t <= 10; ++t) {
    psoup.Ingest(0, Row(0, t * 10, 0, t));  // k = 10..100
  }
  auto res = psoup.Invoke(*q, 10);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 4u);  // k in {10,20,30,40}
}

TEST(PSoupTest, NewQueryAppliedToOldData) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  for (Timestamp t = 1; t <= 10; ++t) {
    psoup.Ingest(0, Row(0, t * 10, 0, t));
  }
  // Query registered AFTER the data arrived still sees history.
  auto q = psoup.Register(FilterQuery(50));
  ASSERT_TRUE(q.ok());
  auto res = psoup.Invoke(*q, 10);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 4u);
}

TEST(PSoupTest, HalfOldHalfNewData) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  for (Timestamp t = 1; t <= 5; ++t) psoup.Ingest(0, Row(0, 1, 0, t));
  auto q = psoup.Register(FilterQuery(50));
  ASSERT_TRUE(q.ok());
  for (Timestamp t = 6; t <= 10; ++t) psoup.Ingest(0, Row(0, 1, 0, t));
  EXPECT_EQ(psoup.Invoke(*q, 10)->size(), 10u);
}

TEST(PSoupTest, WindowImposedAtInvocationTime) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  auto q = psoup.Register(FilterQuery(100, /*window=*/5));
  ASSERT_TRUE(q.ok());
  for (Timestamp t = 1; t <= 20; ++t) psoup.Ingest(0, Row(0, 1, 0, t));

  // Invocation at t=20 sees (15, 20]; at t=10 sees (5, 10].
  EXPECT_EQ(psoup.Invoke(*q, 20)->size(), 5u);
  EXPECT_EQ(psoup.Invoke(*q, 10)->size(), 5u);
  // Disconnected client returning later sees the window as of "later".
  EXPECT_EQ(psoup.Invoke(*q, 23)->size(), 2u);  // only t=19,20 remain
}

TEST(PSoupTest, JoinAcrossRegistrationBoundary) {
  // s tuples arrive BEFORE the join query registers; matching t tuples
  // arrive after. The backfilled SteM must produce the cross matches.
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  psoup.RegisterStream(1, Sch(1));
  psoup.Ingest(0, Row(0, 7, 1, 1));
  psoup.Ingest(0, Row(0, 8, 2, 2));

  PSoupQuery q;
  q.where.joins.push_back({{0, "k"}, {1, "k"}});
  auto id = psoup.Register(q);
  ASSERT_TRUE(id.ok());

  psoup.Ingest(1, Row(1, 7, 3, 3));  // joins with old s (k=7)
  psoup.Ingest(1, Row(1, 9, 4, 4));  // no partner

  auto res = psoup.Invoke(*id, 10);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 1u);
  EXPECT_EQ(res->front().sources(), SourceBit(0) | SourceBit(1));
}

TEST(PSoupTest, JoinFullyHistorical) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  psoup.RegisterStream(1, Sch(1));
  psoup.Ingest(0, Row(0, 7, 1, 1));
  psoup.Ingest(1, Row(1, 7, 2, 2));

  PSoupQuery q;
  q.where.joins.push_back({{0, "k"}, {1, "k"}});
  auto id = psoup.Register(q);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(psoup.Invoke(*id, 5)->size(), 1u);
}

TEST(PSoupTest, MaterializedEqualsRecompute) {
  // Property: for random data and a mixed old/new registration point, the
  // materialized answer equals recomputing from history.
  Rng rng(42);
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  psoup.RegisterStream(1, Sch(1));

  auto feed = [&](Timestamp t) {
    psoup.Ingest(0, Row(0, rng.UniformInt(0, 9), rng.UniformInt(0, 99), t));
    psoup.Ingest(1, Row(1, rng.UniformInt(0, 9), rng.UniformInt(0, 99), t));
  };
  for (Timestamp t = 1; t <= 40; ++t) feed(t);

  PSoupQuery join_q;
  join_q.where.joins.push_back({{0, "k"}, {1, "k"}});
  join_q.where.filters.push_back({{0, "v"}, CmpOp::kLt, Value::Int64(80)});
  join_q.window = 30;
  auto jid = psoup.Register(join_q);
  ASSERT_TRUE(jid.ok());

  PSoupQuery filter_q = FilterQuery(6, 25);
  auto fid = psoup.Register(filter_q);
  ASSERT_TRUE(fid.ok());

  for (Timestamp t = 41; t <= 80; ++t) feed(t);

  for (Timestamp now : {50, 65, 80}) {
    auto mat_j = psoup.Invoke(*jid, now);
    auto rec_j = psoup.InvokeByRecompute(*jid, now);
    ASSERT_TRUE(mat_j.ok() && rec_j.ok());
    EXPECT_EQ(CanonicalMultiset(*mat_j), CanonicalMultiset(*rec_j))
        << "join query at now=" << now;

    auto mat_f = psoup.Invoke(*fid, now);
    auto rec_f = psoup.InvokeByRecompute(*fid, now);
    ASSERT_TRUE(mat_f.ok() && rec_f.ok());
    EXPECT_EQ(CanonicalMultiset(*mat_f), CanonicalMultiset(*rec_f))
        << "filter query at now=" << now;
  }
}

TEST(PSoupTest, UnregisterDropsResultsAndRejectsInvoke) {
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  auto q = psoup.Register(FilterQuery(100));
  ASSERT_TRUE(q.ok());
  psoup.Ingest(0, Row(0, 1, 0, 1));
  EXPECT_EQ(psoup.MaterializedCount(*q), 1u);
  ASSERT_TRUE(psoup.Unregister(*q).ok());
  EXPECT_EQ(psoup.MaterializedCount(*q), 0u);
  EXPECT_TRUE(psoup.Invoke(*q, 10).status().IsNotFound());
  EXPECT_TRUE(psoup.Unregister(*q).IsNotFound());
}

TEST(PSoupTest, EvictionBoundsMaterialization) {
  PSoup psoup(PSoup::Options{.seed = 1, .eviction_interval = 16});
  psoup.RegisterStream(0, Sch(0));
  auto q = psoup.Register(FilterQuery(100, /*window=*/10));
  ASSERT_TRUE(q.ok());
  for (Timestamp t = 1; t <= 2000; ++t) psoup.Ingest(0, Row(0, 1, 0, t));
  // Materialized results stay near the window size, not the stream length.
  EXPECT_LE(psoup.MaterializedCount(*q), 10u + 16u);
  EXPECT_EQ(psoup.Invoke(*q, 2000)->size(), 10u);
}

TEST(PSoupTest, DataRetentionLimitsHistoricalQueries) {
  PSoup psoup(PSoup::Options{.seed = 1, .eviction_interval = 8});
  psoup.RegisterStream(0, Sch(0), /*retention=*/50);
  for (Timestamp t = 1; t <= 200; ++t) psoup.Ingest(0, Row(0, 1, 0, t));
  // History before 150 has been reclaimed.
  EXPECT_LE(psoup.data_stem(0)->size(), 50u + 8u);
  auto q = psoup.Register(FilterQuery(100));
  // A new query sees only retained history.
  EXPECT_LE(psoup.Invoke(*q, 200)->size(), 50u + 8u);
  EXPECT_GE(psoup.Invoke(*q, 200)->size(), 50u);
}

TEST(PSoupTest, ManyDisconnectedClients) {
  // Several standing queries with different windows; clients "reconnect" at
  // different times and each sees exactly its own window.
  PSoup psoup;
  psoup.RegisterStream(0, Sch(0));
  std::vector<QueryId> ids;
  for (Timestamp w = 1; w <= 5; ++w) {
    auto q = psoup.Register(FilterQuery(100, w * 10));
    ASSERT_TRUE(q.ok());
    ids.push_back(*q);
  }
  for (Timestamp t = 1; t <= 100; ++t) psoup.Ingest(0, Row(0, 1, 0, t));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(psoup.Invoke(ids[i], 100)->size(), (i + 1) * 10)
        << "window " << (i + 1) * 10;
  }
}

TEST(PSoupTest, QuerySteMBookkeeping) {
  QuerySteM qs;
  qs.Insert(0, PSoupQuery{{}, 10});
  qs.Insert(1, PSoupQuery{{}, 0});
  EXPECT_EQ(qs.num_active(), 2u);
  EXPECT_EQ(qs.MaxWindow(), 0);  // an unbounded-window query forces 0
  ASSERT_TRUE(qs.Remove(1).ok());
  EXPECT_EQ(qs.MaxWindow(), 10);
  EXPECT_FALSE(qs.IsActive(1));
  EXPECT_TRUE(qs.IsActive(0));
}

TEST(ResultsStructureTest, FetchRespectsWindowAndNow) {
  ResultsStructure rs;
  SchemaRef sch = Sch(0);
  for (Timestamp t = 1; t <= 10; ++t) {
    rs.Insert(3, Tuple::Make(sch, {Value::Int64(t), Value::Int64(0)}, t), t);
  }
  EXPECT_EQ(rs.Fetch(3, 10, 0).size(), 10u);
  EXPECT_EQ(rs.Fetch(3, 10, 4).size(), 4u);   // (6, 10]
  EXPECT_EQ(rs.Fetch(3, 7, 4).size(), 4u);    // (3, 7]
  EXPECT_EQ(rs.Fetch(3, 100, 4).size(), 0u);  // window moved past data
  EXPECT_TRUE(rs.Fetch(99, 10, 0).empty());
  rs.EvictBefore(3, 8);
  EXPECT_EQ(rs.ResultCount(3), 2u);
}

}  // namespace
}  // namespace tcq
