// Query frontend tests: parser (including every §4.1 example), planner
// lowering (CACQ decomposition, self-join aliasing, window loops), and
// catalog bookkeeping.

#include <gtest/gtest.h>

#include "query/catalog.h"
#include "query/parser.h"
#include "query/planner.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

// --- Parser -----------------------------------------------------------------

TEST(ParserTest, SimpleSelect) {
  auto r = ParseQuery("SELECT closingPrice FROM ClosingStockPrices");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->select_all);
  ASSERT_EQ(r->select_list.size(), 1u);
  EXPECT_EQ(r->select_list[0].column, "closingPrice");
  ASSERT_EQ(r->from.size(), 1u);
  EXPECT_EQ(r->from[0].stream, "ClosingStockPrices");
}

TEST(ParserTest, SelectStarAndWhere) {
  auto r = ParseQuery(
      "SELECT * FROM S WHERE price > 50.5 AND sym = 'MSFT' AND n != 3;");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->select_all);
  ASSERT_EQ(r->where.size(), 3u);
  EXPECT_EQ(r->where[0].op, CmpOp::kGt);
  EXPECT_DOUBLE_EQ(std::get<Value>(r->where[0].rhs).AsDouble(), 50.5);
  EXPECT_EQ(std::get<Value>(r->where[1].rhs).AsString(), "MSFT");
  EXPECT_EQ(r->where[2].op, CmpOp::kNe);
}

TEST(ParserTest, PaperSnapshotQuery) {
  // Example 1 verbatim (§4.1.1).
  auto r = ParseQuery(
      "SELECT closingPrice, timestamp "
      "FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->for_loop.has_value());
  EXPECT_EQ(r->for_loop->t_init, 0);
  EXPECT_EQ(r->for_loop->condition.kind, LoopCondition::Kind::kEq);
  EXPECT_EQ(r->for_loop->t_step, -1);
  ASSERT_EQ(r->for_loop->windows.size(), 1u);
  EXPECT_FALSE(r->for_loop->windows[0].left.uses_t);
  EXPECT_EQ(r->for_loop->windows[0].left.offset, 1);
  EXPECT_EQ(r->for_loop->windows[0].right.offset, 5);
}

TEST(ParserTest, PaperLandmarkQuery) {
  // Example 2 (§4.1.1), with t++ step.
  auto r = ParseQuery(
      "SELECT closingPrice, timestamp "
      "FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 50.00 "
      "for (t = 101; t <= 1100; t++) "
      "{ WindowIs(ClosingStockPrices, 101, t); }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->for_loop->t_init, 101);
  EXPECT_EQ(r->for_loop->condition.kind, LoopCondition::Kind::kLe);
  EXPECT_EQ(r->for_loop->condition.bound, 1100);
  EXPECT_EQ(r->for_loop->t_step, 1);
  EXPECT_TRUE(r->for_loop->windows[0].right.uses_t);
}

TEST(ParserTest, PaperSlidingSelfJoin) {
  // Example 5 (§4.1.1): two aliases of one stream, windows on both.
  auto r = ParseQuery(
      "SELECT c2.stockSymbol, c2.closingPrice "
      "FROM ClosingStockPrices c1, ClosingStockPrices c2 "
      "WHERE c1.stockSymbol = 'MSFT' "
      "AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp "
      "for (t = 10; t < 30; t += 1) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->from.size(), 2u);
  EXPECT_EQ(r->from[0].EffectiveAlias(), "c1");
  EXPECT_EQ(r->from[1].EffectiveAlias(), "c2");
  ASSERT_EQ(r->for_loop->windows.size(), 2u);
  EXPECT_EQ(r->for_loop->windows[0].target, "c1");
  EXPECT_TRUE(r->for_loop->windows[0].left.uses_t);
  EXPECT_EQ(r->for_loop->windows[0].left.offset, -4);
}

TEST(ParserTest, UnboundedLoop) {
  auto r = ParseQuery(
      "SELECT * FROM S for (t = 5; true; t += 2) { WindowIs(S, t - 1, t); }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->for_loop->condition.kind, LoopCondition::Kind::kAlways);
  EXPECT_EQ(r->for_loop->t_step, 2);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELEC x FROM S").ok());
  EXPECT_FALSE(ParseQuery("SELECT x").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM S WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM S WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM S extra garbage ( )").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT x FROM S for (t=0; t<5; t++) { }").ok());
}

// --- Catalog ------------------------------------------------------------------

TEST(CatalogTest, DefineAndLookup) {
  Catalog cat;
  auto sid = cat.DefineStream("Stocks", StockFields());
  ASSERT_TRUE(sid.ok());
  auto entry = cat.Lookup("Stocks");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->source, *sid);
  EXPECT_EQ(entry->schema->field(0).source, *sid);
  EXPECT_TRUE(cat.Lookup("Nope").status().IsNotFound());
  EXPECT_TRUE(cat.DefineStream("Stocks", StockFields())
                  .status()
                  .code() == StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AliasGetsFreshSource) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("Stocks", StockFields()).ok());
  auto alias = cat.InstantiateAlias("Stocks");
  ASSERT_TRUE(alias.ok());
  auto canonical = cat.Lookup("Stocks");
  EXPECT_NE(alias->source, canonical->source);
  EXPECT_EQ(alias->name, "Stocks");
  EXPECT_EQ(alias->schema->field(1).source, alias->source);
  EXPECT_NE(cat.LookupBySource(alias->source), nullptr);
}

// --- Planner ------------------------------------------------------------------

TEST(PlannerTest, FiltersBecomeFactors) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("S", StockFields()).ok());
  auto stmt = ParseQuery(
      "SELECT closingPrice FROM S "
      "WHERE closingPrice > 50.0 AND stockSymbol = 'MSFT'");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanQuery(*stmt, &cat);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->spec.filters.size(), 2u);
  EXPECT_TRUE(plan->spec.joins.empty());
  EXPECT_TRUE(plan->spec.residuals.empty());
  ASSERT_TRUE(plan->projection.has_value());
  EXPECT_EQ(plan->projection->attrs().size(), 1u);
}

TEST(PlannerTest, LiteralOnLeftIsFlipped) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("S", StockFields()).ok());
  auto stmt = ParseQuery("SELECT * FROM S WHERE 50.0 < closingPrice");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanQuery(*stmt, &cat);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->spec.filters.size(), 1u);
  EXPECT_EQ(plan->spec.filters[0].op, CmpOp::kGt);  // price > 50
}

TEST(PlannerTest, SelfJoinDecomposition) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto stmt = ParseQuery(
      "SELECT c2.stockSymbol FROM ClosingStockPrices c1, "
      "ClosingStockPrices c2 "
      "WHERE c1.stockSymbol = 'MSFT' "
      "AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanQuery(*stmt, &cat);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Distinct logical sources for the two aliases.
  ASSERT_EQ(plan->bindings.size(), 2u);
  SourceId s1 = plan->bindings[0].second.source;
  SourceId s2 = plan->bindings[1].second.source;
  EXPECT_NE(s1, s2);
  // Decomposition: 1 single-variable factor, 1 equality join edge (the
  // timestamp equality), 1 residual (the > comparison).
  EXPECT_EQ(plan->spec.filters.size(), 1u);
  ASSERT_EQ(plan->spec.joins.size(), 1u);
  EXPECT_EQ(plan->spec.joins[0].left.name, "timestamp");
  ASSERT_EQ(plan->spec.residuals.size(), 1u);
  EXPECT_EQ(plan->spec.Footprint(), SourceBit(s1) | SourceBit(s2));
  EXPECT_EQ(plan->all_predicates.size(), 3u);
}

TEST(PlannerTest, SameSourceComparisonIsResidual) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("S", StockFields()).ok());
  auto stmt = ParseQuery("SELECT * FROM S WHERE timestamp = closingPrice");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanQuery(*stmt, &cat);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->spec.joins.empty());
  EXPECT_EQ(plan->spec.residuals.size(), 1u);
}

TEST(PlannerTest, WindowLoopIsLowered) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("S", StockFields()).ok());
  auto stmt = ParseQuery(
      "SELECT * FROM S WHERE closingPrice > 1.0 "
      "for (t = 10; t <= 20; t += 5) { WindowIs(S, t - 4, t); }");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanQuery(*stmt, &cat);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->window_loop.has_value());
  EXPECT_EQ(plan->window_loop->t_init, 10);
  EXPECT_EQ(plan->window_loop->t_step, 5);
  ASSERT_EQ(plan->window_loop->windows.size(), 1u);
  EXPECT_EQ(plan->window_loop->windows[0].left.t_coef, 1);
  EXPECT_EQ(plan->window_loop->windows[0].left.offset, -4);
  EXPECT_EQ(plan->window_loop->Classify(), WindowClass::kSliding);
}

TEST(PlannerTest, Errors) {
  Catalog cat;
  ASSERT_TRUE(cat.DefineStream("S", StockFields()).ok());

  auto missing_stream = ParseQuery("SELECT * FROM Nope");
  ASSERT_TRUE(missing_stream.ok());
  EXPECT_TRUE(PlanQuery(*missing_stream, &cat).status().IsNotFound());

  auto missing_col = ParseQuery("SELECT volume FROM S");
  ASSERT_TRUE(missing_col.ok());
  EXPECT_TRUE(PlanQuery(*missing_col, &cat).status().IsNotFound());

  ASSERT_TRUE(cat.DefineStream("T", StockFields()).ok());
  auto ambiguous = ParseQuery("SELECT * FROM S, T WHERE closingPrice > 1.0");
  ASSERT_TRUE(ambiguous.ok());
  EXPECT_TRUE(PlanQuery(*ambiguous, &cat).status().IsInvalidArgument());

  auto dup_alias = ParseQuery("SELECT * FROM S a, T a");
  ASSERT_TRUE(dup_alias.ok());
  EXPECT_TRUE(PlanQuery(*dup_alias, &cat).status().IsInvalidArgument());

  auto bad_window = ParseQuery(
      "SELECT * FROM S for (t=0; t<5; t++) { WindowIs(zzz, t-1, t); }");
  ASSERT_TRUE(bad_window.ok());
  EXPECT_TRUE(PlanQuery(*bad_window, &cat).status().IsNotFound());
}

}  // namespace
}  // namespace tcq
