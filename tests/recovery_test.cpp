// Crash-recovery tests (DESIGN.md §13). The framing simulates a crash with
// exact accounting: run, consume some results, Checkpoint(), push more
// traffic, flush the spools, then destroy the server WITHOUT consuming what
// it delivered since the snapshot — those buffered results die with the
// process. A fresh server Restore()s from the snapshot plus the spool
// suffix, and the union of what was consumed before the crash and what the
// restored server delivers must equal, as a multiset, what an uninterrupted
// run produces. Covers a continuous join (SteM state), a sharded class
// (partition maps), a speculating windowed event-time query (runner +
// speculation state), PSoup, and history_reach admission.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "psoup/psoup.h"
#include "server/telegraphcq.h"
#include "storage/checkpoint.h"

namespace tcq {
namespace {

std::vector<Field> KeyedFields() {
  return {{"ts", ValueType::kTimestamp, 0},
          {"k", ValueType::kInt64, 0},
          {"tag", ValueType::kString, 0}};
}

Status PushKeyed(TelegraphCQ* server, const std::string& stream, int64_t k,
                 const std::string& tag, Timestamp ts) {
  return server->Push(
      stream, {Value::TimestampVal(ts), Value::Int64(k), Value::String(tag)},
      ts);
}

/// Fresh spool + checkpoint directories for one test.
struct DurableDirs {
  std::string spool, ckpt;
  explicit DurableDirs(const std::string& name) {
    spool = testing::TempDir() + "/" + name + "_spool";
    ckpt = testing::TempDir() + "/" + name + "_ckpt";
    std::filesystem::remove_all(spool);
    std::filesystem::remove_all(ckpt);
    std::filesystem::create_directories(spool);
    std::filesystem::create_directories(ckpt);
  }
  TelegraphCQ::Options Options() const {
    TelegraphCQ::Options o;
    o.spool_dir = spool;
    o.checkpoint_dir = ckpt;
    return o;
  }
};

/// "Ltag|Rtag" for a projected join result (SELECT l.tag, r.tag).
std::string PairKey(const Tuple& t) {
  return t.at(0).AsString() + "|" + t.at(1).AsString();
}

/// Polls `egress` into `got` until it holds `want` keys (or patience runs
/// out). Returns the number collected.
size_t CollectPairs(PushEgress* egress, std::multiset<std::string>* got,
                    size_t want, int patience_ms) {
  Delivery d;
  for (int i = 0; i < patience_ms && got->size() < want; ++i) {
    while (egress->Poll(&d)) {
      if (!d.tuple.IsPunctuation()) got->insert(PairKey(d.tuple));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return got->size();
}

void RunJoinCrashSim(TelegraphCQ::Options opts, const std::string& tag) {
  // Phase 1: prefix traffic, consume everything, snapshot, suffix traffic,
  // crash with the suffix's results still buffered at egress.
  std::multiset<std::string> got;
  {
    TelegraphCQ server(opts);
    ASSERT_TRUE(server.DefineStream("L", KeyedFields()).ok());
    ASSERT_TRUE(server.DefineStream("R", KeyedFields()).ok());
    auto h = server.Submit("SELECT l.tag, r.tag FROM L l, R r WHERE l.k = r.k");
    ASSERT_TRUE(h.ok()) << h.status();
    server.Start();
    for (int64_t k = 1; k <= 16; ++k) {
      ASSERT_TRUE(
          PushKeyed(&server, "L", k, "L" + std::to_string(k), k).ok());
    }
    for (int64_t k = 1; k <= 8; ++k) {
      ASSERT_TRUE(
          PushKeyed(&server, "R", k, "R" + std::to_string(k), k).ok());
    }
    // Drain the 8 matches so the egress buffer is empty at the snapshot
    // (delivered-but-unconsumed results are not part of a checkpoint).
    ASSERT_EQ(CollectPairs(h->results.get(), &got, 8, 5000), 8u);

    auto epoch = server.Checkpoint();
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    EXPECT_EQ(*epoch, 1u);
    auto view = server.Introspect();
    EXPECT_EQ(view.checkpoint_epochs, 1u);
    EXPECT_GT(view.checkpoint_bytes, 0u);
    EXPECT_NE(
        server.metrics()->FormatText().find("tcq_checkpoint_epochs_total"),
        std::string::npos);

    // Post-snapshot traffic: R9..R16 join L rows that exist ONLY in the
    // snapshot's SteM state, plus one fresh pair on both sides.
    for (int64_t k = 9; k <= 16; ++k) {
      ASSERT_TRUE(
          PushKeyed(&server, "R", k, "R" + std::to_string(k), k).ok());
    }
    ASSERT_TRUE(PushKeyed(&server, "L", 17, "L17", 17).ok());
    ASSERT_TRUE(PushKeyed(&server, "R", 17, "R17", 17).ok());
    ASSERT_TRUE(server.FlushSpools().ok());
    server.Stop();  // crash: the 9 suffix results were never consumed
  }

  // Phase 2: fresh server, same options. Restore = snapshot + spool replay.
  {
    TelegraphCQ server(opts);
    auto epoch = server.Restore();
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    EXPECT_EQ(*epoch, 1u);
    auto handles = server.Handles();
    ASSERT_EQ(handles.size(), 1u);
    ASSERT_NE(handles[0].results, nullptr);
    server.Start();
    CollectPairs(handles[0].results.get(), &got, 17, 5000);
    auto view = server.Introspect();
    server.Stop();

    // Consumed-before-crash plus delivered-after-restore must be EXACTLY
    // the uninterrupted run: every key pairs once, nothing lost or doubled.
    std::multiset<std::string> want;
    for (int64_t k = 1; k <= 17; ++k) {
      want.insert("L" + std::to_string(k) + "|R" + std::to_string(k));
    }
    EXPECT_EQ(got, want) << tag;
    // The spool suffix (R9..R17, L17) was re-routed, not re-archived.
    EXPECT_GE(view.restore_replay_tuples, 10u);
  }
}

TEST(RecoveryTest, ContinuousJoinExactMultisetAcrossCrash) {
  DurableDirs dirs("rec_cont");
  RunJoinCrashSim(dirs.Options(), "unsharded");
}

TEST(RecoveryTest, ShardedClassExactMultisetAcrossCrash) {
  DurableDirs dirs("rec_shard");
  TelegraphCQ::Options opts = dirs.Options();
  opts.executor.shards = 2;  // Flux-partitioned class: maps must survive too
  RunJoinCrashSim(opts, "sharded");
}

TEST(RecoveryTest, SpeculatingWindowedQueryConvergesAcrossCrash) {
  DurableDirs dirs("rec_spec");
  // Sign-accumulated results: additions (speculative or final) +1,
  // retractions -1. Convergence to exactly-once per window tuple must hold
  // even though the crash destroys every result buffered since the snapshot.
  std::map<Timestamp, std::map<Timestamp, int64_t>> acc;
  size_t finals = 0;
  auto drain = [&](WindowResultBuffer* buf) {
    WindowResult wr;
    size_t polled = 0;
    while (buf->Poll(&wr)) {
      ++polled;
      if (wr.kind == WindowResultKind::kFinal) ++finals;
      int64_t sign = wr.kind == WindowResultKind::kRetraction ? -1 : 1;
      for (const Tuple& t : wr.tuples) {
        acc[wr.t][t.Get("ts").AsInt64()] += sign;
      }
    }
    return polled;
  };

  {
    TelegraphCQ server(dirs.Options());
    ASSERT_TRUE(server
                    .DefineStream("S", KeyedFields(),
                                  {.punctuate = true, .disorder_bound = 0})
                    .ok());
    auto h = server.Submit(
        "SELECT ts FROM S "
        "for (t = 5; t <= 12; t += 1) { WindowIs(S, t - 4, t); }",
        {.speculate = true});
    ASSERT_TRUE(h.ok()) << h.status();
    server.Start();
    for (Timestamp d = 1; d <= 9; ++d) {
      ASSERT_TRUE(PushKeyed(&server, "S", d, "d", d).ok());
    }
    // Windows t=5..8 seal once the watermark passes 8. Then keep polling
    // until the buffer stays quiet: every emission the snapshot will record
    // as already-delivered must actually be consumed before the snapshot,
    // or the crash would lose it unrecoverably.
    for (int i = 0; i < 5000 && finals < 4; ++i) {
      drain(h->windows.get());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(finals, 4u);
    for (int quiet = 0; quiet < 3;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      quiet = drain(h->windows.get()) == 0 ? quiet + 1 : 0;
    }

    auto epoch = server.Checkpoint();
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    // Suffix: seals t=9..12 — their results land in the buffer and die
    // with the process. Window t=9 already holds day 9 from before the
    // snapshot, so its final mixes snapshot state with replayed traffic.
    for (Timestamp d = 10; d <= 20; ++d) {
      ASSERT_TRUE(PushKeyed(&server, "S", d, "d", d).ok());
    }
    ASSERT_TRUE(server.FlushSpools().ok());
    server.Stop();
  }

  {
    TelegraphCQ server(dirs.Options());
    auto epoch = server.Restore();
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    auto handles = server.Handles();
    ASSERT_EQ(handles.size(), 1u);
    ASSERT_NE(handles[0].windows, nullptr);
    server.Start();
    for (int i = 0; i < 5000 && finals < 8; ++i) {
      drain(handles[0].windows.get());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.Stop();
    drain(handles[0].windows.get());
  }

  // Exactly 8 finals across the crash: the restored runner re-fires the
  // lost windows from replayed traffic but never re-fires consumed ones.
  EXPECT_EQ(finals, 8u);
  for (Timestamp t = 5; t <= 12; ++t) {
    std::map<Timestamp, int64_t> want;
    for (Timestamp d = t - 4; d <= t; ++d) want[d] = 1;
    for (auto it = acc[t].begin(); it != acc[t].end();) {
      it = it->second == 0 ? acc[t].erase(it) : std::next(it);
    }
    EXPECT_EQ(acc[t], want) << "window ending " << t;
  }
}

TEST(RecoveryTest, HistoryReachBackfillsFromArchive) {
  DurableDirs dirs("rec_hist");
  TelegraphCQ server(dirs.Options());
  ASSERT_TRUE(server
                  .DefineStream("S", KeyedFields(),
                                {.punctuate = true, .disorder_bound = 0})
                  .ok());
  // A continuous reader keeps the pushes legal (and consumed) while the
  // archive builds up with no windowed query submitted yet.
  auto cq = server.Submit("SELECT * FROM S");
  ASSERT_TRUE(cq.ok()) << cq.status();
  server.Start();
  for (Timestamp d = 1; d <= 20; ++d) {
    ASSERT_TRUE(PushKeyed(&server, "S", d, "d", d).ok());
  }
  ASSERT_TRUE(server.FlushSpools().ok());

  // The whole archive: all 8 windows fire over history the query never saw
  // live (the stream's watermark promise travels behind the backfill).
  auto whole = server.Submit(
      "SELECT ts FROM S "
      "for (t = 5; t <= 12; t += 1) { WindowIs(S, t - 4, t); }",
      {.history_reach = kMaxTimestamp});
  ASSERT_TRUE(whole.ok()) << whole.status();
  std::map<Timestamp, std::multiset<Timestamp>> fired;
  for (int i = 0; i < 5000 && fired.size() < 8; ++i) {
    WindowResult wr;
    while (whole->windows->Poll(&wr)) {
      for (const Tuple& t : wr.tuples) {
        fired[wr.t].insert(t.Get("ts").AsInt64());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fired.size(), 8u);
  for (Timestamp t = 5; t <= 12; ++t) {
    // The backfilled window must equal a direct scan of the archive.
    auto archived = server.ScanHistory("S", t - 4, t);
    ASSERT_TRUE(archived.ok()) << archived.status();
    std::multiset<Timestamp> want;
    for (const Tuple& a : *archived) want.insert(a.timestamp());
    EXPECT_EQ(fired[t], want) << "window ending " << t;
  }

  // Bounded reach: only the archive's last 5 timestamps (16..20) prime the
  // fjords, so windows reaching further back come up short. (The loop stops
  // at t=19: a window ending at the archive's max timestamp stays open —
  // the watermark promise is max_ts - disorder and seals only windows it
  // strictly passed.)
  auto bounded = server.Submit(
      "SELECT ts FROM S "
      "for (t = 16; t <= 19; t += 1) { WindowIs(S, t - 4, t); }",
      {.history_reach = 5});
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  std::map<Timestamp, size_t> sizes;
  for (int i = 0; i < 5000 && sizes.size() < 4; ++i) {
    WindowResult wr;
    while (bounded->windows->Poll(&wr)) sizes[wr.t] = wr.tuples.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_EQ(sizes.size(), 4u);
  for (Timestamp t = 16; t <= 19; ++t) {
    // Window [t-4, t] clipped to the reach bound [16, 20].
    EXPECT_EQ(sizes[t], static_cast<size_t>(t - 16 + 1)) << "window " << t;
  }

  // history_reach is a windowed-only, spooled-only option.
  EXPECT_TRUE(server.Submit("SELECT * FROM S", {.history_reach = 5})
                  .status()
                  .IsInvalidArgument());
  TelegraphCQ unspooled;
  ASSERT_TRUE(unspooled.DefineStream("S", KeyedFields()).ok());
  EXPECT_TRUE(unspooled
                  .Submit(
                      "SELECT ts FROM S "
                      "for (t = 5; t <= 6; t += 1) { WindowIs(S, t - 4, t); }",
                      {.history_reach = 5})
                  .status()
                  .IsFailedPrecondition());
}

TEST(RecoveryTest, PSoupRoundTripsThroughCheckpoint) {
  SchemaRef sch = Schema::Make({
      {"k", ValueType::kInt64, 0},
      {"v", ValueType::kInt64, 0},
  });
  auto row = [&](int64_t k, Timestamp ts) {
    return Tuple::Make(sch, {Value::Int64(k), Value::Int64(0)}, ts);
  };
  PSoupQuery filter;
  filter.where.filters.push_back({{0, "k"}, CmpOp::kLt, Value::Int64(50)});

  PSoup original;
  original.RegisterStream(0, sch);
  auto q = original.Register(filter);
  ASSERT_TRUE(q.ok());
  for (Timestamp t = 1; t <= 10; ++t) original.Ingest(0, row(t * 10, t));
  auto before = original.Invoke(*q, 10);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 4u);  // k in {10,20,30,40}

  const std::string path = testing::TempDir() + "/rec_psoup_ckpt";
  {
    CheckpointWriter w(1);
    ASSERT_TRUE(original.CheckpointTo(&w).ok());
    ASSERT_TRUE(w.WriteTo(path).ok());
  }
  auto r = CheckpointReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status();
  PSoup restored;
  ASSERT_TRUE(restored.RestoreFrom(r->get()).ok());

  // Materialized results and query registrations survive verbatim...
  auto after = restored.Invoke(*q, 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size());
  // ...and the restored instance keeps running: new data still reaches the
  // old query, and a cross-boundary invocation sees both halves.
  restored.Ingest(0, row(20, 11));
  auto grown = restored.Invoke(*q, 11);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->size(), 5u);
}

TEST(RecoveryTest, BackgroundCheckpointerWritesEpochs) {
  DurableDirs dirs("rec_loop");
  TelegraphCQ::Options opts = dirs.Options();
  opts.checkpoint_interval_ms = 40;
  TelegraphCQ server(opts);
  ASSERT_TRUE(server.DefineStream("S", KeyedFields()).ok());
  auto h = server.Submit("SELECT * FROM S");
  ASSERT_TRUE(h.ok());
  server.Start();
  for (Timestamp d = 1; d <= 5; ++d) {
    ASSERT_TRUE(PushKeyed(&server, "S", d, "d", d).ok());
  }
  uint64_t epochs = 0;
  for (int i = 0; i < 5000 && epochs < 2; ++i) {
    epochs = server.Introspect().checkpoint_epochs;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  EXPECT_GE(epochs, 2u);
  EXPECT_TRUE(std::filesystem::exists(dirs.ckpt + "/ckpt-1"));
  EXPECT_TRUE(std::filesystem::exists(dirs.ckpt + "/ckpt-2"));
}

TEST(RecoveryTest, ErrorPaths) {
  // No checkpoint_dir: both halves are typed preconditions.
  TelegraphCQ bare;
  EXPECT_TRUE(bare.Checkpoint().status().IsFailedPrecondition());
  EXPECT_TRUE(bare.Restore().status().IsFailedPrecondition());
  EXPECT_TRUE(bare.FlushSpools().IsFailedPrecondition());

  // A configured but empty directory: nothing to restore from.
  DurableDirs dirs("rec_err");
  {
    TelegraphCQ server(dirs.Options());
    EXPECT_TRUE(server.Restore().status().IsNotFound());
    // Restore demands a FRESH server: any prior ingest poisons it.
    ASSERT_TRUE(server.DefineStream("S", KeyedFields()).ok());
    auto h = server.Submit("SELECT * FROM S");
    ASSERT_TRUE(h.ok());
    server.Start();
    ASSERT_TRUE(PushKeyed(&server, "S", 1, "d", 1).ok());
    ASSERT_TRUE(server.Checkpoint().ok());
    EXPECT_TRUE(server.Restore().status().IsFailedPrecondition());
    server.Stop();
  }
}

}  // namespace
}  // namespace tcq
