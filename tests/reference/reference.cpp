#include "reference/reference.h"

#include <algorithm>
#include <sstream>

namespace tcq::testref {

std::string CanonicalKey(const Tuple& tuple) {
  std::vector<std::pair<std::string, std::string>> parts;
  const Schema& schema = *tuple.schema();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.field(i);
    parts.emplace_back(
        "s" + std::to_string(f.source) + "." + f.name,
        tuple.at(i).ToString());
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream os;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) os << "|";
    os << parts[i].first << "=" << parts[i].second;
  }
  return os.str();
}

std::map<std::string, int> CanonicalMultiset(
    const std::vector<Tuple>& tuples) {
  std::map<std::string, int> out;
  for (const Tuple& t : tuples) ++out[CanonicalKey(t)];
  return out;
}

namespace {
void JoinRec(const std::vector<std::vector<Tuple>>& streams,
             const std::vector<PredicateRef>& predicates, size_t depth,
             Tuple acc, std::vector<Tuple>* out) {
  if (depth == streams.size()) {
    for (const auto& p : predicates) {
      if (!p->Eval(acc)) return;
    }
    out->push_back(std::move(acc));
    return;
  }
  for (const Tuple& t : streams[depth]) {
    Tuple next = depth == 0
                     ? t
                     : Tuple::Concat(acc, t,
                                     Schema::Concat(acc.schema(), t.schema()));
    // Prune early with predicates that became evaluable.
    bool viable = true;
    for (const auto& p : predicates) {
      if (p->CanEval(next) && !p->Eval(next)) {
        viable = false;
        break;
      }
    }
    if (viable) JoinRec(streams, predicates, depth + 1, std::move(next), out);
  }
}
}  // namespace

std::vector<Tuple> NaiveJoin(const std::vector<std::vector<Tuple>>& streams,
                             const std::vector<PredicateRef>& predicates) {
  std::vector<Tuple> out;
  if (streams.empty()) return out;
  JoinRec(streams, predicates, 0, Tuple(), &out);
  return out;
}

std::vector<Tuple> NaiveFilter(const std::vector<Tuple>& stream,
                               const std::vector<PredicateRef>& predicates) {
  std::vector<Tuple> out;
  for (const Tuple& t : stream) {
    bool keep = true;
    for (const auto& p : predicates) {
      if (!p->Eval(t)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(t);
  }
  return out;
}

}  // namespace tcq::testref
