// Naive reference evaluator used by property tests: computes the expected
// output of filter/join queries by brute force, independent of eddies,
// SteMs, and routing policies. Output order and field order are
// canonicalized before comparison because an adaptive engine is free to
// produce matches in any order and any concatenation layout.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "operators/predicate.h"
#include "tuple/tuple.h"

namespace tcq::testref {

/// Canonical form of a tuple: fields sorted by (source, name), rendered as
/// "s0.a=1|s1.b=2". Join outputs with different concatenation orders
/// canonicalize identically.
std::string CanonicalKey(const Tuple& tuple);

/// Canonical multiset (key -> count) of a batch of tuples.
std::map<std::string, int> CanonicalMultiset(const std::vector<Tuple>& tuples);

/// Brute-force evaluation of a conjunctive filter+join query: emits every
/// combination of one tuple per source satisfying all predicates. Sources
/// are indexed by position in `streams`.
std::vector<Tuple> NaiveJoin(const std::vector<std::vector<Tuple>>& streams,
                             const std::vector<PredicateRef>& predicates);

/// Brute-force filter of one stream.
std::vector<Tuple> NaiveFilter(const std::vector<Tuple>& stream,
                               const std::vector<PredicateRef>& predicates);

}  // namespace tcq::testref
