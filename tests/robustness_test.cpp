// Robustness and regression tests: the windowed-DU completion regression
// (a one-iteration loop must not be declared done before its window fires),
// out-of-order arrivals, load shedding under slow clients, background
// spooling + history scans, and logging.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/logging.h"
#include "ingress/generators.h"
#include "server/telegraphcq.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

// Regression: a snapshot (single-iteration) windowed query fed by a
// wrapper-hosted source. The windowed DU used to report kDone after its
// iterator advanced past the only iteration, before the pending window had
// fired — so the EO stopped scheduling it and the window never arrived.
TEST(RegressionTest, SnapshotWindowFedByWrapperFires) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto gen = std::make_unique<StockTickGenerator>(
      "gen", SourceId{0},
      StockTickGenerator::Options{
          .symbols = {"MSFT", "AAPL"}, .seed = 2026, .days = 60});
  ASSERT_TRUE(server.AttachSource("ClosingStockPrices", std::move(gen)).ok());
  auto handle = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();

  WindowResult wr;
  bool fired = false;
  for (int i = 0; i < 5000 && !fired; ++i) {
    fired = handle->windows->Poll(&wr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(fired) << "snapshot window never fired through the DU";
  EXPECT_EQ(wr.tuples.size(), 5u);
}

TEST(RobustnessTest, OutOfOrderArrivalWithinJitterIsWindowedCorrectly) {
  // Sensor readings with bounded timestamp jitter: StreamHistory positions
  // them, and windows computed over history are exact.
  SensorGenerator gen("s", 0,
                      SensorGenerator::Options{.num_sensors = 4,
                                               .max_jitter = 5,
                                               .seed = 3,
                                               .count = 500});
  StreamHistory h;
  Tuple t;
  std::vector<Tuple> all;
  while (gen.Next(&t)) {
    h.Append(t);
    all.push_back(t);
  }
  // History is timestamp-ordered despite jittered arrival order.
  std::vector<Tuple> scanned;
  h.Range(kMinTimestamp, kMaxTimestamp, &scanned);
  for (size_t i = 1; i < scanned.size(); ++i) {
    EXPECT_LE(scanned[i - 1].timestamp(), scanned[i].timestamp());
  }
  // A mid-stream window returns exactly the in-range readings.
  std::vector<Tuple> window;
  h.Range(100, 150, &window);
  size_t expect = 0;
  for (const Tuple& x : all) {
    if (x.timestamp() >= 100 && x.timestamp() <= 150) ++expect;
  }
  EXPECT_EQ(window.size(), expect);
}

TEST(RobustnessTest, SlowClientShedsInsteadOfStallingEngine) {
  TelegraphCQ::Options opts;
  opts.egress_capacity = 16;
  opts.egress_shed = ShedPolicy::kDropOldest;  // QoS: stay live, lose stale
  TelegraphCQ server(opts);
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok());
  server.Start();
  // Client never drains; push far more than the egress buffer holds.
  for (Timestamp d = 1; d <= 500; ++d) {
    ASSERT_TRUE(server
                    .Push("ClosingStockPrices",
                          {Value::TimestampVal(d), Value::String("MSFT"),
                           Value::Double(50.0)},
                          d)
                    .ok());
  }
  // Engine kept running: deliveries continued, extra results were shed.
  for (int i = 0; i < 500 && handle->results->delivered() < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.Stop();
  EXPECT_EQ(handle->results->delivered(), 500u);
  EXPECT_GE(handle->results->shed(), 500u - 16u);
  EXPECT_LE(handle->results->buffered(), 16u);
  // The stalest results were the ones shed: the newest survive.
  Delivery d;
  ASSERT_TRUE(handle->results->Poll(&d));
  EXPECT_GT(d.tuple.timestamp(), 400);
}

TEST(RobustnessTest, BackgroundSpoolingMakesHistoryScannable) {
  std::string dir = testing::TempDir() + "/tcq_spool_test";
  std::filesystem::create_directories(dir);
  TelegraphCQ::Options opts;
  opts.spool_dir = dir;
  TelegraphCQ server(opts);
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  server.Start();
  for (Timestamp d = 1; d <= 300; ++d) {
    ASSERT_TRUE(server
                    .Push("ClosingStockPrices",
                          {Value::TimestampVal(d), Value::String("MSFT"),
                           Value::Double(50.0 + double(d))},
                          d)
                    .ok());
  }
  // Historical window scan over the spool, while the stream stays live.
  auto hist = server.ScanHistory("ClosingStockPrices", 100, 120);
  ASSERT_TRUE(hist.ok()) << hist.status();
  ASSERT_EQ(hist->size(), 21u);
  EXPECT_EQ(hist->front().timestamp(), 100);
  EXPECT_DOUBLE_EQ(hist->back().Get("closingPrice").AsDouble(), 170.0);
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(RobustnessTest, ScanHistoryWithoutSpoolIsError) {
  TelegraphCQ server;  // no spool_dir
  ASSERT_TRUE(server.DefineStream("S", StockFields()).ok());
  EXPECT_EQ(server.ScanHistory("S", 0, 10).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.ScanHistory("Nope", 0, 10).status().IsNotFound());
}

TEST(RobustnessTest, TicketSchedulerExecutorEndToEnd) {
  // Same end-to-end flow as the round-robin executor tests, but under the
  // lottery DU scheduler.
  Executor exec({.num_eos = 2, .quantum = 16, .ticket_scheduler = true});
  SchemaRef sch = Schema::Make({{"k", ValueType::kInt64, 0}});
  ASSERT_TRUE(exec.RegisterStream(0, sch).ok());
  std::atomic<size_t> got{0};
  CQSpec q;
  q.filters.push_back({{0, "k"}, CmpOp::kGe, Value::Int64(0)});
  ASSERT_TRUE(
      exec.SubmitQuery(q, [&](GlobalQueryId, const Tuple&) { ++got; }).ok());
  exec.Start();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        exec.IngestTuple(0, Tuple::Make(sch, {Value::Int64(i)}, i)).ok());
  }
  for (int i = 0; i < 500 && got.load() < 500; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  exec.Stop();
  EXPECT_EQ(got.load(), 500u);
}

TEST(LoggingTest, LevelsGateOutput) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Below threshold: the streaming expression must not even be evaluated.
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  TCQ_LOG(Debug) << "never shown " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  TCQ_LOG(Debug) << "shown " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(old);
}

}  // namespace
}  // namespace tcq
