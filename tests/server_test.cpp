// End-to-end server tests: SQL in, streams through the wrapper/executor,
// results out through egress — including the paper's §4.1 windowed queries
// and self-joins against the full stack.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ingress/generators.h"
#include "server/telegraphcq.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

// Pushes `days` of deterministic prices: MSFT at 50, AAPL alternating
// 40/60 (beats MSFT on even days).
void PushStocks(TelegraphCQ* server, Timestamp days) {
  for (Timestamp d = 1; d <= days; ++d) {
    ASSERT_TRUE(server
                    ->Push("ClosingStockPrices",
                           {Value::TimestampVal(d), Value::String("MSFT"),
                            Value::Double(50.0)},
                           d)
                    .ok());
    double aapl = d % 2 == 0 ? 60.0 : 40.0;
    ASSERT_TRUE(server
                    ->Push("ClosingStockPrices",
                           {Value::TimestampVal(d), Value::String("AAPL"),
                            Value::Double(aapl)},
                           d)
                    .ok());
  }
}

size_t DrainCount(PushEgress* egress, size_t expected, int patience_ms) {
  size_t got = 0;
  Delivery d;
  for (int waited = 0; waited < patience_ms; ++waited) {
    while (egress->Poll(&d)) ++got;
    if (got >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return got;
}

TEST(ServerTest, ContinuousFilterQueryEndToEnd) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 45.0");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->results, nullptr);
  server.Start();

  PushStocks(&server, 50);
  size_t got = DrainCount(handle->results.get(), 50, 2000);
  server.Stop();
  EXPECT_EQ(got, 50u);  // MSFT every day; AAPL filtered by symbol
}

TEST(ServerTest, ProjectionIsApplied) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'AAPL'");
  ASSERT_TRUE(handle.ok());
  server.Start();
  PushStocks(&server, 5);
  Delivery d;
  for (int i = 0; i < 2000; ++i) {
    if (handle->results->Poll(&d)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_EQ(d.tuple.num_fields(), 1u);
  EXPECT_EQ(d.tuple.schema()->field(0).name, "closingPrice");
}

TEST(ServerTest, MultipleQueriesShareOneStream) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto q_msft = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'");
  auto q_cheap = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice < 45.0");
  ASSERT_TRUE(q_msft.ok() && q_cheap.ok());
  EXPECT_EQ(server.executor().num_classes(), 1u);  // shared class
  server.Start();
  PushStocks(&server, 40);
  size_t msft = DrainCount(q_msft->results.get(), 40, 2000);
  size_t cheap = DrainCount(q_cheap->results.get(), 20, 2000);
  server.Stop();
  EXPECT_EQ(msft, 40u);
  EXPECT_EQ(cheap, 20u);  // AAPL on odd days at 40 < 45
}

TEST(ServerTest, ContinuousQueryAfterWindowedQueryStillDelivers) {
  // Regression: a windowed query's input subscription shares the logical
  // source id with the executor's shared subscription; the dedup in
  // SubscribeContinuous must not mistake one for the other, or a continuous
  // query submitted second never gets fed.
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto win = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (t = 5; t <= 10; t += 1) { WindowIs(ClosingStockPrices, t-4, t); }");
  ASSERT_TRUE(win.ok()) << win.status();
  auto cq = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'");
  ASSERT_TRUE(cq.ok()) << cq.status();
  server.Start();
  PushStocks(&server, 12);
  size_t got = DrainCount(cq->results.get(), 12, 2000);
  WindowResult wr;
  size_t fired = 0;
  for (int waited = 0; waited < 2000 && fired < 6; ++waited) {
    while (win->windows->Poll(&wr)) ++fired;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  EXPECT_EQ(got, 12u);    // the continuous query is actually fed
  EXPECT_EQ(fired, 6u);   // and the windowed query still fires t=5..10
}

TEST(ServerTest, CancelStopsDeliveries) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle =
      server.Submit("SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok());
  server.Start();
  PushStocks(&server, 10);
  ASSERT_EQ(DrainCount(handle->results.get(), 20, 2000), 20u);
  ASSERT_TRUE(server.Cancel(handle->id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  PushStocks(&server, 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Delivery d;
  EXPECT_FALSE(handle->results->Poll(&d));
  server.Stop();
}

TEST(ServerTest, WindowedSnapshotQuery) {
  // Paper example 1: the first five days of MSFT.
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->windows, nullptr);
  server.Start();
  PushStocks(&server, 10);

  WindowResult wr;
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    fired = handle->windows->Poll(&wr);
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(fired);
  EXPECT_EQ(wr.tuples.size(), 5u);
  for (const Tuple& t : wr.tuples) EXPECT_LE(t.Get("timestamp").AsInt64(), 5);
}

TEST(ServerTest, WindowedSlidingSelfJoin) {
  // Paper example 5: stocks that beat MSFT, over 5-day sliding windows.
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT c2.stockSymbol, c2.closingPrice "
      "FROM ClosingStockPrices c1, ClosingStockPrices c2 "
      "WHERE c1.stockSymbol = 'MSFT' "
      "AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp "
      "for (t = 5; t <= 12; t += 1) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();
  PushStocks(&server, 20);

  std::vector<WindowResult> fired;
  for (int i = 0; i < 3000 && fired.size() < 8; ++i) {
    WindowResult wr;
    while (handle->windows->Poll(&wr)) fired.push_back(wr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_EQ(fired.size(), 8u);
  for (const WindowResult& wr : fired) {
    // AAPL beats MSFT on even days: each 5-day window has 2 or 3 of them.
    size_t evens = 0;
    for (Timestamp d = wr.t - 4; d <= wr.t; ++d) {
      if (d % 2 == 0) ++evens;
    }
    EXPECT_EQ(wr.tuples.size(), evens) << "window ending " << wr.t;
    for (const Tuple& t : wr.tuples) {
      EXPECT_EQ(t.Get("stockSymbol").AsString(), "AAPL");
      EXPECT_DOUBLE_EQ(t.Get("closingPrice").AsDouble(), 60.0);
    }
  }
}

TEST(ServerTest, WrapperSourceFeedsQueries) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto gen = std::make_unique<StockTickGenerator>(
      "gen", SourceId{0},
      StockTickGenerator::Options{
          .symbols = {"MSFT", "AAPL"}, .seed = 1, .days = 100});
  ASSERT_TRUE(server.AttachSource("ClosingStockPrices", std::move(gen)).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'");
  ASSERT_TRUE(handle.ok());
  server.Start();
  size_t got = DrainCount(handle->results.get(), 100, 3000);
  server.Stop();
  EXPECT_EQ(got, 100u);
}

TEST(ServerTest, IntrospectSeesEveryLayerAfterEndToEndRun) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  // A continuous self-join: exercises the shared eddy AND its SteMs.
  auto joined = server.Submit(
      "SELECT c2.stockSymbol FROM ClosingStockPrices c1, "
      "ClosingStockPrices c2 WHERE c1.stockSymbol = c2.stockSymbol "
      "AND c1.closingPrice > 55.0");
  ASSERT_TRUE(joined.ok()) << joined.status();
  // A windowed query: exercises window fjords and the fired-window stats.
  auto windowed = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(windowed.ok()) << windowed.status();
  server.Start();
  PushStocks(&server, 10);

  // Wait until both clients saw output (AAPL beats 55 on even days and
  // joins its own history; the snapshot window fires once day 6 arrives).
  ASSERT_GE(DrainCount(joined->results.get(), 1, 2000), 1u);
  WindowResult wr;
  for (int i = 0; i < 2000 && !windowed->windows->Poll(&wr); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  TelegraphCQ::Introspection view = server.Introspect();
  EXPECT_EQ(view.tuples_ingested, 20u);

  // Every layer of the engine reported into the one registry.
  const MetricsSnapshot& m = view.metrics;
  EXPECT_GT(m.CounterFamilySum("tcq_shared_eddy_routing_decisions_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_stem_builds_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_stem_probes_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_queue_enqueued_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_eo_quanta_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_egress_delivered_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_window_fired_total"), 0u);
  EXPECT_EQ(m.CounterValue(
                "tcq_server_stream_ingested_total{stream=\"ClosingStockPrices"
                "\"}"),
            20u);

  // Per-query stats distinguish the two clients.
  ASSERT_EQ(view.queries.size(), 2u);
  for (const TelegraphCQ::QueryStats& qs : view.queries) {
    EXPECT_EQ(qs.tuples_in, 20u);  // both read the one physical stream
    if (qs.windowed) {
      EXPECT_GE(qs.windows_fired, 1u);
      EXPECT_EQ(qs.tuples_out, 5u);  // MSFT days 1..5
    } else {
      EXPECT_EQ(qs.id, joined->id);
      EXPECT_GT(qs.tuples_out, 0u);
    }
  }

  // The text exposition renders the same registry.
  std::string text = server.metrics()->FormatText();
  EXPECT_NE(text.find("tcq_server_tuples_ingested_total 20"),
            std::string::npos);
  EXPECT_NE(text.find("tcq_queue_wait_us"), std::string::npos);
}

TEST(ServerTest, ErrorPaths) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("S", StockFields()).ok());
  EXPECT_TRUE(server.DefineStream("S", StockFields()).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(server.Submit("SELECT * FROM Nope").status().IsNotFound());
  EXPECT_FALSE(server.Submit("garbage !!").ok());
  EXPECT_TRUE(server
                  .Push("Nope", {Value::TimestampVal(1), Value::String("x"),
                                 Value::Double(1.0)},
                        1)
                  .IsNotFound());
  // Arity mismatch caught by schema validation.
  EXPECT_TRUE(server.Push("S", {Value::TimestampVal(1)}, 1)
                  .IsInvalidArgument());
}

// --- Event time & punctuations (DESIGN.md §12) ---------------------------

/// One MSFT row per day, price 50 + d.
void PushDay(TelegraphCQ* server, Timestamp d) {
  ASSERT_TRUE(server
                  ->Push("ClosingStockPrices",
                         {Value::TimestampVal(d), Value::String("MSFT"),
                          Value::Double(50.0 + static_cast<double>(d))},
                         d)
                  .ok());
}

/// Shuffles `days` within consecutive blocks of `block`: arrival disorder
/// is hard-bounded by block - 1.
std::vector<Timestamp> BlockShuffledDays(Timestamp days, size_t block,
                                         uint64_t seed) {
  std::vector<Timestamp> order;
  for (Timestamp d = 1; d <= days; ++d) order.push_back(d);
  Rng rng(seed);
  for (size_t i = 0; i < order.size(); i += block) {
    size_t end = std::min(i + block, order.size());
    for (size_t j = end - 1; j > i; --j) {
      std::swap(order[j], order[i + rng.UniformInt(0, j - i)]);
    }
  }
  return order;
}

TEST(EventTimeServerTest, DisorderedArrivalsYieldExactWindows) {
  // A punctuating stream with a disorder bound that covers the shuffle:
  // every event-time window must come out exactly as if arrivals had been
  // in order, with zero late drops.
  TelegraphCQ server;
  ASSERT_TRUE(server
                  .DefineStream("ClosingStockPrices", StockFields(),
                                {.punctuate = true, .disorder_bound = 4})
                  .ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (t = 5; t <= 12; t += 1) { "
      "WindowIs(ClosingStockPrices, t - 4, t); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->windows, nullptr);
  server.Start();

  for (Timestamp d : BlockShuffledDays(20, 4, 7)) PushDay(&server, d);

  std::map<Timestamp, std::multiset<Timestamp>> got;
  for (int i = 0; i < 3000 && got.size() < 8; ++i) {
    WindowResult wr;
    while (handle->windows->Poll(&wr)) {
      for (const Tuple& t : wr.tuples) {
        got[wr.t].insert(t.Get("timestamp").AsInt64());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto intro = server.Introspect();
  server.Stop();

  ASSERT_EQ(got.size(), 8u);
  for (Timestamp t = 5; t <= 12; ++t) {
    std::multiset<Timestamp> want;
    for (Timestamp d = t - 4; d <= t; ++d) want.insert(d);
    EXPECT_EQ(got[t], want) << "window ending " << t;
  }
  for (const auto& ss : intro.streams) {
    if (ss.name == "ClosingStockPrices") {
      EXPECT_EQ(ss.late_tuples, 0u);
    }
  }
}

TEST(EventTimeServerTest, LateTuplesAreCountedAndExcluded) {
  // disorder_bound = 0: the watermark is the max timestamp seen, so a
  // replayed old row is provably late — counted per stream, and absent
  // from every event-time window.
  TelegraphCQ server;
  ASSERT_TRUE(server
                  .DefineStream("ClosingStockPrices", StockFields(),
                                {.punctuate = true, .disorder_bound = 0})
                  .ok());
  auto handle = server.Submit(
      "SELECT timestamp FROM ClosingStockPrices "
      "for (t = 5; t <= 8; t += 1) { "
      "WindowIs(ClosingStockPrices, t - 4, t); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();

  std::map<Timestamp, size_t> sizes;
  auto drain = [&] {
    WindowResult wr;
    while (handle->windows->Poll(&wr)) sizes[wr.t] = wr.tuples.size();
  };

  for (Timestamp d : {1, 2, 4, 5, 6}) PushDay(&server, d);
  // Wait for window [1, 5] to fire: the runner has provably applied the
  // watermark-6 punctuation, so the replayed day 3 below is seen late by
  // the runner too (not just by the entrance scan).
  for (int i = 0; i < 3000 && sizes.count(5) == 0; ++i) {
    drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sizes.count(5), 1u);
  PushDay(&server, 3);  // late: the watermark already reached 6
  for (Timestamp d = 7; d <= 16; ++d) PushDay(&server, d);

  for (int i = 0; i < 3000 && sizes.size() < 4; ++i) {
    drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto intro = server.Introspect();
  server.Stop();

  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[5], 4u);  // days {1,2,4,5}: day 3 never arrived in time
  EXPECT_EQ(sizes[6], 4u);  // days {2,4,5,6}: late day 3 dropped
  EXPECT_EQ(sizes[7], 4u);  // days {4,5,6,7}: late day 3 dropped
  EXPECT_EQ(sizes[8], 5u);  // days {4..8}
  bool saw_stream = false;
  for (const auto& ss : intro.streams) {
    if (ss.name != "ClosingStockPrices") continue;
    saw_stream = true;
    EXPECT_EQ(ss.late_tuples, 1u);
  }
  EXPECT_TRUE(saw_stream);
}

TEST(EventTimeServerTest, SpeculativeQueryConvergesToFinalWindows) {
  // With speculation on, early (kSpeculative) results stream out before the
  // watermark seals a window; accumulating additions minus retractions must
  // reproduce the exact final content, and kFinal seals every window.
  TelegraphCQ server;
  ASSERT_TRUE(server
                  .DefineStream("ClosingStockPrices", StockFields(),
                                {.punctuate = true, .disorder_bound = 0})
                  .ok());
  auto handle = server.Submit(
      "SELECT timestamp FROM ClosingStockPrices "
      "for (t = 5; t <= 8; t += 1) { "
      "WindowIs(ClosingStockPrices, t - 4, t); }",
      {.speculate = true});
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();

  // Two pushes with a gap so at least one poll observes an unsealed window.
  for (Timestamp d = 1; d <= 5; ++d) PushDay(&server, d);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (Timestamp d = 6; d <= 10; ++d) PushDay(&server, d);

  std::map<Timestamp, std::map<Timestamp, int64_t>> acc;
  size_t finals = 0, speculative = 0;
  for (int i = 0; i < 3000 && finals < 4; ++i) {
    WindowResult wr;
    while (handle->windows->Poll(&wr)) {
      if (wr.kind == WindowResultKind::kFinal) ++finals;
      if (wr.kind == WindowResultKind::kSpeculative) ++speculative;
      int64_t sign = wr.kind == WindowResultKind::kRetraction ? -1 : 1;
      for (const Tuple& t : wr.tuples) {
        acc[wr.t][t.Get("timestamp").AsInt64()] += sign;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto intro = server.Introspect();
  server.Stop();

  ASSERT_EQ(finals, 4u);
  EXPECT_GT(speculative, 0u);
  for (Timestamp t = 5; t <= 8; ++t) {
    std::map<Timestamp, int64_t> want;
    for (Timestamp d = t - 4; d <= t; ++d) want[d] = 1;
    // Zero entries are retract-cancelled additions; drop before comparing.
    for (auto it = acc[t].begin(); it != acc[t].end();) {
      it = it->second == 0 ? acc[t].erase(it) : std::next(it);
    }
    EXPECT_EQ(acc[t], want) << "window ending " << t;
  }
  // The client-side and introspected retraction counts agree (SPJ windows
  // are monotone in arrivals, so this is typically zero — see DESIGN.md).
  for (const auto& qs : intro.queries) {
    if (qs.id == handle->id) {
      EXPECT_EQ(qs.retractions, handle->windows->retractions());
    }
  }
}

TEST(EventTimeServerTest, PunctuationsReachContinuousEgress) {
  // Continuous queries on a punctuating stream see the merged punctuations
  // in-band at egress, counted per client.
  TelegraphCQ server;
  ASSERT_TRUE(server
                  .DefineStream("ClosingStockPrices", StockFields(),
                                {.punctuate = true, .disorder_bound = 0})
                  .ok());
  auto handle =
      server.Submit("SELECT * FROM ClosingStockPrices");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->results, nullptr);
  server.Start();

  for (Timestamp d = 1; d <= 10; ++d) PushDay(&server, d);

  // 10 data rows plus at least one merged punctuation tuple.
  size_t data = 0, puncts = 0;
  Delivery d;
  for (int waited = 0; waited < 3000 && (data < 10 || puncts == 0);
       ++waited) {
    while (handle->results->Poll(&d)) {
      if (d.tuple.IsPunctuation()) {
        ++puncts;
        EXPECT_GE(d.tuple.AsPunctuation().low_watermark, 1);
      } else {
        ++data;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  EXPECT_EQ(data, 10u);
  EXPECT_GT(puncts, 0u);
  EXPECT_EQ(handle->results->punctuations_delivered(), puncts);
}

}  // namespace
}  // namespace tcq
