// End-to-end server tests: SQL in, streams through the wrapper/executor,
// results out through egress — including the paper's §4.1 windowed queries
// and self-joins against the full stack.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "ingress/generators.h"
#include "server/telegraphcq.h"

namespace tcq {
namespace {

std::vector<Field> StockFields() {
  return {{"timestamp", ValueType::kTimestamp, 0},
          {"stockSymbol", ValueType::kString, 0},
          {"closingPrice", ValueType::kDouble, 0}};
}

// Pushes `days` of deterministic prices: MSFT at 50, AAPL alternating
// 40/60 (beats MSFT on even days).
void PushStocks(TelegraphCQ* server, Timestamp days) {
  for (Timestamp d = 1; d <= days; ++d) {
    ASSERT_TRUE(server
                    ->Push("ClosingStockPrices",
                           {Value::TimestampVal(d), Value::String("MSFT"),
                            Value::Double(50.0)},
                           d)
                    .ok());
    double aapl = d % 2 == 0 ? 60.0 : 40.0;
    ASSERT_TRUE(server
                    ->Push("ClosingStockPrices",
                           {Value::TimestampVal(d), Value::String("AAPL"),
                            Value::Double(aapl)},
                           d)
                    .ok());
  }
}

size_t DrainCount(PushEgress* egress, size_t expected, int patience_ms) {
  size_t got = 0;
  Delivery d;
  for (int waited = 0; waited < patience_ms; ++waited) {
    while (egress->Poll(&d)) ++got;
    if (got >= expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return got;
}

TEST(ServerTest, ContinuousFilterQueryEndToEnd) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' AND closingPrice > 45.0");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->results, nullptr);
  server.Start();

  PushStocks(&server, 50);
  size_t got = DrainCount(handle->results.get(), 50, 2000);
  server.Stop();
  EXPECT_EQ(got, 50u);  // MSFT every day; AAPL filtered by symbol
}

TEST(ServerTest, ProjectionIsApplied) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'AAPL'");
  ASSERT_TRUE(handle.ok());
  server.Start();
  PushStocks(&server, 5);
  Delivery d;
  for (int i = 0; i < 2000; ++i) {
    if (handle->results->Poll(&d)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_EQ(d.tuple.num_fields(), 1u);
  EXPECT_EQ(d.tuple.schema()->field(0).name, "closingPrice");
}

TEST(ServerTest, MultipleQueriesShareOneStream) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto q_msft = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'");
  auto q_cheap = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE closingPrice < 45.0");
  ASSERT_TRUE(q_msft.ok() && q_cheap.ok());
  EXPECT_EQ(server.executor().num_classes(), 1u);  // shared class
  server.Start();
  PushStocks(&server, 40);
  size_t msft = DrainCount(q_msft->results.get(), 40, 2000);
  size_t cheap = DrainCount(q_cheap->results.get(), 20, 2000);
  server.Stop();
  EXPECT_EQ(msft, 40u);
  EXPECT_EQ(cheap, 20u);  // AAPL on odd days at 40 < 45
}

TEST(ServerTest, CancelStopsDeliveries) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle =
      server.Submit("SELECT * FROM ClosingStockPrices WHERE closingPrice > 0.0");
  ASSERT_TRUE(handle.ok());
  server.Start();
  PushStocks(&server, 10);
  ASSERT_EQ(DrainCount(handle->results.get(), 20, 2000), 20u);
  ASSERT_TRUE(server.Cancel(handle->id).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  PushStocks(&server, 10);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Delivery d;
  EXPECT_FALSE(handle->results->Poll(&d));
  server.Stop();
}

TEST(ServerTest, WindowedSnapshotQuery) {
  // Paper example 1: the first five days of MSFT.
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT closingPrice, timestamp FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  ASSERT_NE(handle->windows, nullptr);
  server.Start();
  PushStocks(&server, 10);

  WindowResult wr;
  bool fired = false;
  for (int i = 0; i < 2000 && !fired; ++i) {
    fired = handle->windows->Poll(&wr);
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_TRUE(fired);
  EXPECT_EQ(wr.tuples.size(), 5u);
  for (const Tuple& t : wr.tuples) EXPECT_LE(t.Get("timestamp").AsInt64(), 5);
}

TEST(ServerTest, WindowedSlidingSelfJoin) {
  // Paper example 5: stocks that beat MSFT, over 5-day sliding windows.
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto handle = server.Submit(
      "SELECT c2.stockSymbol, c2.closingPrice "
      "FROM ClosingStockPrices c1, ClosingStockPrices c2 "
      "WHERE c1.stockSymbol = 'MSFT' "
      "AND c2.closingPrice > c1.closingPrice "
      "AND c2.timestamp = c1.timestamp "
      "for (t = 5; t <= 12; t += 1) { "
      "WindowIs(c1, t - 4, t); WindowIs(c2, t - 4, t); }");
  ASSERT_TRUE(handle.ok()) << handle.status();
  server.Start();
  PushStocks(&server, 20);

  std::vector<WindowResult> fired;
  for (int i = 0; i < 3000 && fired.size() < 8; ++i) {
    WindowResult wr;
    while (handle->windows->Poll(&wr)) fired.push_back(wr);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  ASSERT_EQ(fired.size(), 8u);
  for (const WindowResult& wr : fired) {
    // AAPL beats MSFT on even days: each 5-day window has 2 or 3 of them.
    size_t evens = 0;
    for (Timestamp d = wr.t - 4; d <= wr.t; ++d) {
      if (d % 2 == 0) ++evens;
    }
    EXPECT_EQ(wr.tuples.size(), evens) << "window ending " << wr.t;
    for (const Tuple& t : wr.tuples) {
      EXPECT_EQ(t.Get("stockSymbol").AsString(), "AAPL");
      EXPECT_DOUBLE_EQ(t.Get("closingPrice").AsDouble(), 60.0);
    }
  }
}

TEST(ServerTest, WrapperSourceFeedsQueries) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  auto gen = std::make_unique<StockTickGenerator>(
      "gen", SourceId{0},
      StockTickGenerator::Options{
          .symbols = {"MSFT", "AAPL"}, .seed = 1, .days = 100});
  ASSERT_TRUE(server.AttachSource("ClosingStockPrices", std::move(gen)).ok());
  auto handle = server.Submit(
      "SELECT * FROM ClosingStockPrices WHERE stockSymbol = 'MSFT'");
  ASSERT_TRUE(handle.ok());
  server.Start();
  size_t got = DrainCount(handle->results.get(), 100, 3000);
  server.Stop();
  EXPECT_EQ(got, 100u);
}

TEST(ServerTest, IntrospectSeesEveryLayerAfterEndToEndRun) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("ClosingStockPrices", StockFields()).ok());
  // A continuous self-join: exercises the shared eddy AND its SteMs.
  auto joined = server.Submit(
      "SELECT c2.stockSymbol FROM ClosingStockPrices c1, "
      "ClosingStockPrices c2 WHERE c1.stockSymbol = c2.stockSymbol "
      "AND c1.closingPrice > 55.0");
  ASSERT_TRUE(joined.ok()) << joined.status();
  // A windowed query: exercises window fjords and the fired-window stats.
  auto windowed = server.Submit(
      "SELECT closingPrice FROM ClosingStockPrices "
      "WHERE stockSymbol = 'MSFT' "
      "for (; t == 0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }");
  ASSERT_TRUE(windowed.ok()) << windowed.status();
  server.Start();
  PushStocks(&server, 10);

  // Wait until both clients saw output (AAPL beats 55 on even days and
  // joins its own history; the snapshot window fires once day 6 arrives).
  ASSERT_GE(DrainCount(joined->results.get(), 1, 2000), 1u);
  WindowResult wr;
  for (int i = 0; i < 2000 && !windowed->windows->Poll(&wr); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  TelegraphCQ::Introspection view = server.Introspect();
  EXPECT_EQ(view.tuples_ingested, 20u);

  // Every layer of the engine reported into the one registry.
  const MetricsSnapshot& m = view.metrics;
  EXPECT_GT(m.CounterFamilySum("tcq_shared_eddy_routing_decisions_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_stem_builds_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_stem_probes_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_queue_enqueued_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_eo_quanta_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_egress_delivered_total"), 0u);
  EXPECT_GT(m.CounterFamilySum("tcq_window_fired_total"), 0u);
  EXPECT_EQ(m.CounterValue(
                "tcq_server_stream_ingested_total{stream=\"ClosingStockPrices"
                "\"}"),
            20u);

  // Per-query stats distinguish the two clients.
  ASSERT_EQ(view.queries.size(), 2u);
  for (const TelegraphCQ::QueryStats& qs : view.queries) {
    EXPECT_EQ(qs.tuples_in, 20u);  // both read the one physical stream
    if (qs.windowed) {
      EXPECT_GE(qs.windows_fired, 1u);
      EXPECT_EQ(qs.tuples_out, 5u);  // MSFT days 1..5
    } else {
      EXPECT_EQ(qs.id, joined->id);
      EXPECT_GT(qs.tuples_out, 0u);
    }
  }

  // The text exposition renders the same registry.
  std::string text = server.metrics()->FormatText();
  EXPECT_NE(text.find("tcq_server_tuples_ingested_total 20"),
            std::string::npos);
  EXPECT_NE(text.find("tcq_queue_wait_us"), std::string::npos);
}

TEST(ServerTest, ErrorPaths) {
  TelegraphCQ server;
  ASSERT_TRUE(server.DefineStream("S", StockFields()).ok());
  EXPECT_TRUE(server.DefineStream("S", StockFields()).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(server.Submit("SELECT * FROM Nope").status().IsNotFound());
  EXPECT_FALSE(server.Submit("garbage !!").ok());
  EXPECT_TRUE(server
                  .Push("Nope", {Value::TimestampVal(1), Value::String("x"),
                                 Value::Double(1.0)},
                        1)
                  .IsNotFound());
  // Arity mismatch caught by schema validation.
  EXPECT_TRUE(server.Push("S", {Value::TimestampVal(1)}, 1)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tcq
