// Tests for SteMs: build/probe/evict semantics, the exactly-once sequence
// rule, hash vs scan probes, and eviction policies (paper §2.2).

#include <gtest/gtest.h>

#include "stem/stem.h"

namespace tcq {
namespace {

SchemaRef Sch(SourceId source) {
  return Schema::Make({
      {"k", ValueType::kInt64, source},
      {"payload", ValueType::kString, source},
  });
}

Tuple Row(SourceId source, int64_t k, const std::string& payload,
          Timestamp ts) {
  return Tuple::Make(Sch(source), {Value::Int64(k), Value::String(payload)},
                     ts);
}

TEST(SteMTest, BuildAndProbeEq) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "a", 1), /*seq=*/1);
  stem.Build(Row(1, 10, "b", 2), /*seq=*/2);
  stem.Build(Row(1, 20, "c", 3), /*seq=*/3);

  std::vector<const StemEntry*> out;
  stem.ProbeEq(Value::Int64(10), /*seq_bound=*/100, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->tuple.Get("payload").AsString(), "a");
  EXPECT_EQ(out[1]->tuple.Get("payload").AsString(), "b");

  out.clear();
  stem.ProbeEq(Value::Int64(99), 100, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SteMTest, SeqBoundExcludesLaterBuilds) {
  // The exactly-once rule: a probe only sees builds that arrived earlier.
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "early", 1), 1);
  stem.Build(Row(1, 10, "late", 9), 9);

  std::vector<const StemEntry*> out;
  stem.ProbeEq(Value::Int64(10), /*seq_bound=*/5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->tuple.Get("payload").AsString(), "early");
}

TEST(SteMTest, ScanProbeReturnsAllEarlier) {
  SteM stem("stemT", 1, Sch(1), {});  // scan-only, no key
  EXPECT_FALSE(stem.has_hash_index());
  stem.Build(Row(1, 1, "a", 1), 1);
  stem.Build(Row(1, 2, "b", 2), 2);
  stem.Build(Row(1, 3, "c", 3), 3);

  std::vector<const StemEntry*> out;
  stem.ProbeScan(/*seq_bound=*/3, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SteMTest, MaxCountEvictsFifo) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k", .max_count = 2});
  stem.Build(Row(1, 10, "a", 1), 1);
  stem.Build(Row(1, 10, "b", 2), 2);
  stem.Build(Row(1, 10, "c", 3), 3);
  EXPECT_EQ(stem.size(), 2u);
  EXPECT_EQ(stem.evictions(), 1u);

  std::vector<const StemEntry*> out;
  stem.ProbeEq(Value::Int64(10), 100, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->tuple.Get("payload").AsString(), "b");
  EXPECT_EQ(out[1]->tuple.Get("payload").AsString(), "c");
}

TEST(SteMTest, WindowEvictionOnAdvanceTime) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k", .window = 10});
  stem.Build(Row(1, 10, "t1", 1), 1);
  stem.Build(Row(1, 10, "t5", 5), 2);
  stem.Build(Row(1, 10, "t12", 12), 3);

  stem.AdvanceTime(15);  // cutoff = 5: evicts t1 and t5
  EXPECT_EQ(stem.size(), 1u);
  std::vector<const StemEntry*> out;
  stem.ProbeEq(Value::Int64(10), 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->tuple.Get("payload").AsString(), "t12");
}

TEST(SteMTest, NoWindowMeansNoEviction) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "a", 1), 1);
  stem.AdvanceTime(1000000);
  EXPECT_EQ(stem.size(), 1u);
}

TEST(SteMTest, StatsCount) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "a", 1), 1);
  std::vector<const StemEntry*> out;
  stem.ProbeEq(Value::Int64(10), 100, &out);
  stem.ProbeEq(Value::Int64(11), 100, &out);
  EXPECT_EQ(stem.builds(), 1u);
  EXPECT_EQ(stem.probes(), 2u);
  EXPECT_EQ(stem.matches(), 1u);
}

TEST(EntryLogTest, AbsoluteIdsSurviveEviction) {
  EntryLog log;
  uint64_t id0 = log.Append({Row(0, 1, "a", 1), 1});
  uint64_t id1 = log.Append({Row(0, 2, "b", 2), 2});
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  log.PopFront();
  EXPECT_FALSE(log.IsLive(id0));
  EXPECT_TRUE(log.IsLive(id1));
  EXPECT_EQ(log.Get(id1).tuple.Get("payload").AsString(), "b");
}

TEST(HashIndexTest, LookupPrunesDeadPrefix) {
  EntryLog log;
  HashIndex index;
  for (int i = 0; i < 4; ++i) {
    uint64_t id = log.Append({Row(0, 7, "x" + std::to_string(i), i), i});
    index.Insert(Value::Int64(7), id);
  }
  log.PopFront();
  log.PopFront();
  std::vector<uint64_t> ids;
  index.Lookup(Value::Int64(7), log, &ids);
  EXPECT_EQ(ids, (std::vector<uint64_t>{2, 3}));
}

TEST(HashIndexTest, VacuumDropsDeadBuckets) {
  EntryLog log;
  HashIndex index;
  uint64_t id = log.Append({Row(0, 7, "x", 1), 1});
  index.Insert(Value::Int64(7), id);
  EXPECT_EQ(index.num_buckets(), 1u);
  log.PopFront();
  index.Vacuum(log);
  EXPECT_EQ(index.num_buckets(), 0u);
}

// --- SteMProbe as an eddy module -------------------------------------------

TEST(SteMProbeTest, AppliesOnlyToTuplesMissingTheSource) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  SteMProbe probe("probeT", &stem,
                  {.probe_key = AttrRef{0, "k"}, .build_key = AttrRef{1, "k"},
                   .predicates = {}});
  EXPECT_TRUE(probe.AppliesTo(SourceBit(0)));
  EXPECT_FALSE(probe.AppliesTo(SourceBit(1)));
  EXPECT_FALSE(probe.AppliesTo(SourceBit(0) | SourceBit(1)));
  // A tuple that doesn't span the probe-key source can't probe yet.
  EXPECT_FALSE(probe.AppliesTo(SourceBit(2)));
}

TEST(SteMProbeTest, ProbeEmitsConcatenations) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "match1", 1), 1);
  stem.Build(Row(1, 11, "nomatch", 2), 2);
  stem.Build(Row(1, 10, "match2", 3), 3);

  SteMProbe probe("probeT", &stem,
                  {.probe_key = AttrRef{0, "k"}, .build_key = AttrRef{1, "k"},
                   .predicates = {}});
  Envelope env{Row(0, 10, "probe", 4), 0, 4};
  std::vector<Envelope> out;
  EXPECT_EQ(probe.Process(env, &out), EddyModule::Action::kExpand);
  ASSERT_EQ(out.size(), 2u);
  for (const Envelope& child : out) {
    EXPECT_EQ(child.tuple.sources(), SourceBit(0) | SourceBit(1));
    EXPECT_EQ(child.tuple.num_fields(), 4u);
  }
  EXPECT_EQ(out[0].seq_max, 4);  // max(probe seq 4, build seq 1)
}

TEST(SteMProbeTest, ZeroMatchesDropsTuple) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  SteMProbe probe("probeT", &stem,
                  {.probe_key = AttrRef{0, "k"}, .build_key = AttrRef{1, "k"},
                   .predicates = {}});
  Envelope env{Row(0, 10, "probe", 4), 0, 4};
  std::vector<Envelope> out;
  EXPECT_EQ(probe.Process(env, &out), EddyModule::Action::kDrop);
  EXPECT_TRUE(out.empty());
}

TEST(SteMProbeTest, ResidualPredicateFiltersMatches) {
  SteM stem("stemT", 1, Sch(1), {.key_attr = "k"});
  stem.Build(Row(1, 10, "aaa", 1), 1);
  stem.Build(Row(1, 10, "zzz", 2), 2);

  // Residual: build payload must be lexicographically above probe payload.
  auto residual =
      MakeCompareAttrs({1, "payload"}, CmpOp::kGt, {0, "payload"});
  SteMProbe probe("probeT", &stem,
                  {.probe_key = AttrRef{0, "k"}, .build_key = AttrRef{1, "k"},
                   .predicates = {residual}});
  Envelope env{Row(0, 10, "mmm", 5), 0, 5};
  std::vector<Envelope> out;
  EXPECT_EQ(probe.Process(env, &out), EddyModule::Action::kExpand);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuple.Get("payload").AsString(), "mmm");  // first occurrence
}

TEST(SteMProbeTest, ScanJoinSupportsNonEquiPredicates) {
  SteM stem("stemT", 1, Sch(1), {});  // no hash index
  stem.Build(Row(1, 5, "a", 1), 1);
  stem.Build(Row(1, 50, "b", 2), 2);

  auto residual = MakeCompareAttrs({1, "k"}, CmpOp::kGt, {0, "k"});
  SteMProbe probe("probeT", &stem,
                  {.probe_key = std::nullopt, .build_key = std::nullopt,
                   .predicates = {residual}});
  Envelope env{Row(0, 10, "probe", 5), 0, 5};
  std::vector<Envelope> out;
  EXPECT_EQ(probe.Process(env, &out), EddyModule::Action::kExpand);
  ASSERT_EQ(out.size(), 1u);  // only k=50 > 10
}

}  // namespace
}  // namespace tcq
