// Storage tests: tuple codec round-trips, page sealing and metadata,
// windowed scans touching only relevant pages, and buffer-pool replacement
// policies (including the broadcast-cyclic MRU advantage of §4.3).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/checkpoint.h"
#include "storage/scanner.h"
#include "storage/stream_store.h"

namespace tcq {
namespace {

SchemaRef Sch() {
  return Schema::Make({
      {"k", ValueType::kInt64, 0},
      {"name", ValueType::kString, 0},
      {"price", ValueType::kDouble, 0},
      {"flag", ValueType::kBool, 0},
      {"when", ValueType::kTimestamp, 0},
  });
}

Tuple Row(int64_t k, const std::string& name, double price, bool flag,
          Timestamp ts) {
  return Tuple::Make(Sch(),
                     {Value::Int64(k), Value::String(name),
                      Value::Double(price), Value::Bool(flag),
                      Value::TimestampVal(ts)},
                     ts);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TupleCodecTest, RoundTripsAllTypes) {
  TupleCodec codec(Sch());
  Tuple original = Row(42, "hello world", 3.25, true, 99);
  std::string buf;
  codec.Encode(original, &buf);
  size_t pos = 0;
  auto decoded = codec.Decode(buf, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->timestamp(), 99);
  EXPECT_EQ(pos, buf.size());
}

TEST(TupleCodecTest, RoundTripsNulls) {
  SchemaRef sch = Sch();
  TupleCodec codec(sch);
  Tuple original = Tuple::Make(
      sch, {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
            Value::Null()},
      5);
  std::string buf;
  codec.Encode(original, &buf);
  size_t pos = 0;
  auto decoded = codec.Decode(buf, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->at(0).is_null());
}

TEST(TupleCodecTest, TruncatedBufferIsError) {
  TupleCodec codec(Sch());
  std::string buf;
  codec.Encode(Row(1, "abc", 1.0, false, 1), &buf);
  buf.resize(buf.size() / 2);
  size_t pos = 0;
  EXPECT_FALSE(codec.Decode(buf, &pos).ok());
}

TEST(StreamStoreTest, AppendSealsPagesAndScans) {
  auto store = StreamStore::Create(TempPath("tcq_store1.log"), Sch());
  ASSERT_TRUE(store.ok());
  const int kN = 2000;
  for (int i = 1; i <= kN; ++i) {
    ASSERT_TRUE(
        (*store)->Append(Row(i, "sym" + std::to_string(i % 50), i * 1.5,
                             i % 2 == 0, i))
            .ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->tuples_appended(), uint64_t(kN));
  EXPECT_GT((*store)->pages_sealed(), 5u);  // definitely multiple pages

  BufferPool pool({.capacity_pages = 8});
  WindowedScanner scanner(store->get(), &pool);
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(500, 600, &out).ok());
  ASSERT_EQ(out.size(), 101u);
  EXPECT_EQ(out.front().timestamp(), 500);
  EXPECT_EQ(out.back().timestamp(), 600);
  EXPECT_EQ(out.front().Get("name").AsString(), "sym0");
}

TEST(StreamStoreTest, TailPageIsReadableBeforeFlush) {
  auto store = StreamStore::Create(TempPath("tcq_store2.log"), Sch());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append(Row(1, "a", 1.0, false, 1)).ok());
  // Not flushed: still only the in-memory tail.
  EXPECT_EQ((*store)->pages_sealed(), 0u);
  EXPECT_EQ((*store)->NumPages(), 1u);

  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(0, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(StreamStoreTest, TailPageScansSeeFreshAppends) {
  // Regression: the mutable tail page must not be served from the buffer
  // pool's cache — a scan, more appends, then another scan must see the
  // new tuples.
  auto store = StreamStore::Create(TempPath("tcq_store_tail2.log"), Sch());
  ASSERT_TRUE(store.ok());
  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);

  ASSERT_TRUE((*store)->Append(Row(1, "a", 1.0, false, 1)).ok());
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 1u);

  ASSERT_TRUE((*store)->Append(Row(2, "b", 2.0, false, 2)).ok());
  out.clear();
  ASSERT_TRUE(scanner.Scan(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 2u) << "stale tail page served from cache";
}

TEST(StreamStoreTest, PageMetadataPrunesScans) {
  auto store = StreamStore::Create(TempPath("tcq_store3.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 5000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t total_pages = (*store)->NumPages();
  // A narrow window touches a small fraction of pages.
  auto touched = (*store)->PagesInRange(100, 120);
  EXPECT_LT(touched.size(), total_pages / 10);
  auto all = (*store)->PagesInRange(kMinTimestamp, kMaxTimestamp);
  EXPECT_EQ(all.size(), total_pages);
}

TEST(StreamStoreTest, ReadPageOutOfRange) {
  auto store = StreamStore::Create(TempPath("tcq_store4.log"), Sch());
  ASSERT_TRUE(store.ok());
  std::string page;
  EXPECT_TRUE((*store)->ReadPage(5, &page).IsOutOfRange());
}

TEST(BufferPoolTest, HitsAndMisses) {
  auto store = StreamStore::Create(TempPath("tcq_store5.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 3000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  BufferPool pool({.capacity_pages = 4});
  ASSERT_TRUE(pool.Fetch(store->get(), 0).ok());
  ASSERT_TRUE(pool.Fetch(store->get(), 0).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, CapacityEnforced) {
  auto store = StreamStore::Create(TempPath("tcq_store6.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 5000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  BufferPool pool({.capacity_pages = 3});
  for (uint64_t p = 0; p < (*store)->NumPages(); ++p) {
    ASSERT_TRUE(pool.Fetch(store->get(), p).ok());
  }
  EXPECT_LE(pool.cached_pages(), 3u);
  EXPECT_GT(pool.evictions(), 0u);
}

class BufferPolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(BufferPolicyTest, AllPoliciesServeCorrectData) {
  auto store = StreamStore::Create(
      TempPath(std::string("tcq_store_p_") +
               ReplacementPolicyName(GetParam()) + ".log"),
      Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 4000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", double(i), false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  BufferPool pool({.capacity_pages = 4, .policy = GetParam()});
  WindowedScanner scanner(store->get(), &pool);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Timestamp lo = rng.UniformInt(1, 3000);
    std::vector<Tuple> out;
    ASSERT_TRUE(scanner.Scan(lo, lo + 99, &out).ok());
    ASSERT_EQ(out.size(), 100u) << "window at " << lo;
    EXPECT_EQ(out.front().timestamp(), lo);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, BufferPolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kMru,
                                           ReplacementPolicy::kClock),
                         [](const auto& info) {
                           return ReplacementPolicyName(info.param);
                         });

TEST(BufferPoolTest, MruBeatsLruOnCyclicScan) {
  // The broadcast-disk observation: a repeated cyclic scan larger than the
  // pool thrashes LRU (every access misses) but MRU retains a stable prefix.
  auto store = StreamStore::Create(TempPath("tcq_store_cyc.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 6000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t pages = (*store)->NumPages();
  ASSERT_GT(pages, 10u);

  auto run = [&](ReplacementPolicy policy) {
    BufferPool pool({.capacity_pages = size_t(pages / 2), .policy = policy});
    for (int cycle = 0; cycle < 5; ++cycle) {
      for (uint64_t p = 0; p < pages; ++p) {
        EXPECT_TRUE(pool.Fetch(store->get(), p).ok());
      }
    }
    return pool.HitRate();
  };
  double lru = run(ReplacementPolicy::kLru);
  double mru = run(ReplacementPolicy::kMru);
  EXPECT_GT(mru, lru + 0.2) << "MRU should dominate on cyclic re-scans";
}

TEST(ScannerTest, WindowInstanceIntegration) {
  auto store = StreamStore::Create(TempPath("tcq_store_w.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);

  auto loop = ForLoopSpec::Sliding({0}, 10, 100, 100);
  WindowIterator iter(loop);
  WindowInstance inst = iter.Next();
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.ScanWindow(inst, 0, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // [91, 100]
  EXPECT_TRUE(scanner.ScanWindow(inst, 7, &out).IsInvalidArgument());
}

// --- Satellite: scanner closed-interval boundary pins ------------------------

TEST(ScannerTest, ScanBoundsAreClosedInterval) {
  auto store = StreamStore::Create(TempPath("tcq_store_ci.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 600; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);

  // Both endpoints are included: [10, 20] is 11 tuples, not 10 or 9.
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(10, 20, &out).ok());
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out.front().timestamp(), 10);
  EXPECT_EQ(out.back().timestamp(), 20);

  // Degenerate interval [t, t] selects exactly t, at both extremes.
  out.clear();
  ASSERT_TRUE(scanner.Scan(1, 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().timestamp(), 1);
  out.clear();
  ASSERT_TRUE(scanner.Scan(600, 600, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().timestamp(), 600);

  // Just outside the data on either side: empty, not an error.
  out.clear();
  ASSERT_TRUE(scanner.Scan(kMinTimestamp, 0, &out).ok());
  EXPECT_TRUE(out.empty());
  out.clear();
  ASSERT_TRUE(scanner.Scan(601, kMaxTimestamp, &out).ok());
  EXPECT_TRUE(out.empty());

  // An interval straddling a page boundary must not lose either edge.
  const StreamStore::PageMeta& first = (*store)->page_meta(0);
  out.clear();
  ASSERT_TRUE(scanner.Scan(first.max_ts, first.max_ts + 1, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front().timestamp(), first.max_ts);
  EXPECT_EQ(out.back().timestamp(), first.max_ts + 1);

  // Reversed bounds select nothing.
  out.clear();
  ASSERT_TRUE(scanner.Scan(20, 10, &out).ok());
  EXPECT_TRUE(out.empty());
}

// --- Satellite: codec round-trip edge cases ----------------------------------

TEST(TupleCodecTest, RoundTripsNaNDouble) {
  TupleCodec codec(Sch());
  Tuple original =
      Row(1, "nan", std::numeric_limits<double>::quiet_NaN(), true, 7);
  std::string buf;
  codec.Encode(original, &buf);
  size_t pos = 0;
  auto decoded = codec.Decode(buf, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(std::isnan(decoded->at(2).AsDouble()));
  EXPECT_EQ(decoded->at(0).AsInt64(), 1);
  EXPECT_EQ(pos, buf.size());
}

TEST(StreamStoreTest, MaxLengthStringFillsAPage) {
  SchemaRef sch = Schema::Make({{"s", ValueType::kString, 0}});
  auto store = StreamStore::Create(TempPath("tcq_store_max.log"), sch);
  ASSERT_TRUE(store.ok());
  // Encoded tuple = 8 (ts) + 2 (arity) + 1 (tag) + 4 (length) + payload, and
  // a page holds kPageSize - 4 (count header) encoded bytes.
  const size_t kMaxLen = kPageSize - 4 - 15;
  const std::string big(kMaxLen, 'x');
  ASSERT_TRUE(
      (*store)->Append(Tuple::Make(sch, {Value::String(big)}, 1)).ok());
  // One byte more no longer fits any page: typed rejection, not truncation.
  EXPECT_TRUE((*store)
                  ->Append(Tuple::Make(sch, {Value::String(big + "y")}, 2))
                  .IsInvalidArgument());
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<Tuple> out;
  ASSERT_TRUE((*store)->ScanFrom(0, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at(0).AsString(), big);
}

TEST(StreamStoreTest, NullLanesSurvivePageRoundTrip) {
  auto store = StreamStore::Create(TempPath("tcq_store_null.log"), Sch());
  ASSERT_TRUE(store.ok());
  SchemaRef sch = Sch();
  for (int i = 0; i < 200; ++i) {
    // Rotate which lane is null so every column exercises the null path.
    std::vector<Value> vals = {Value::Int64(i), Value::String("s"),
                               Value::Double(1.5), Value::Bool(true),
                               Value::TimestampVal(i)};
    vals[static_cast<size_t>(i) % vals.size()] = Value::Null();
    ASSERT_TRUE((*store)->Append(Tuple::Make(sch, vals, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  std::vector<Tuple> out;
  ASSERT_TRUE((*store)->ScanFrom(0, &out).ok());
  ASSERT_EQ(out.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(out[i].at(c).is_null(), c == static_cast<size_t>(i) % 5)
          << "row " << i << " col " << c;
    }
  }
}

TEST(StreamStoreTest, CorruptPageIsTypedError) {
  auto store = StreamStore::Create(TempPath("tcq_store_corrupt.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "abc", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  std::string page;
  ASSERT_TRUE((*store)->ReadPage(0, &page).ok());
  // Lie about the tuple count: decoding runs off the page's real payload
  // and must surface a typed kIOError, never garbage tuples.
  uint32_t count = 10000;
  page.replace(0, sizeof(count),
               reinterpret_cast<const char*>(&count), sizeof(count));
  std::vector<Tuple> out;
  Status s = (*store)->DecodePage(page, &out);
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
}

TEST(StreamStoreTest, TruncatedFileRecoversOnlyWholePages) {
  const std::string path = TempPath("tcq_store_trunc.log");
  uint64_t full_pages = 0;
  {
    auto store = StreamStore::Create(path, Sch());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE((*store)->Append(Row(i, "payload", 1.0, false, i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    full_pages = (*store)->pages_sealed();
    ASSERT_GE(full_pages, 2u);
  }
  // Tear the file mid-page (a crash during a page write).
  std::filesystem::resize_file(path, full_pages * kPageSize - kPageSize / 2);
  auto reopened = StreamStore::Open(path, Sch());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::vector<Tuple> out;
  ASSERT_TRUE((*reopened)->ScanFrom(0, &out).ok());
  // Every tuple of every whole page survives; the torn fragment is dropped.
  EXPECT_EQ((*reopened)->pages_sealed(), full_pages - 1);
  ASSERT_FALSE(out.empty());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].timestamp(), static_cast<Timestamp>(i));
  }
}

// --- Satellite: checkpoint file round-trip and corruption --------------------

TEST(CheckpointTest, RoundTripsScalarsAndTuples) {
  const std::string path = TempPath("tcq_ckpt_rt");
  SchemaRef sch = Sch();
  Tuple weird = Tuple::Make(
      sch,
      {Value::Int64(-1), Value::Null(),
       Value::Double(std::numeric_limits<double>::quiet_NaN()),
       Value::Bool(false), Value::TimestampVal(kMaxTimestamp)},
      kMaxTimestamp);
  {
    CheckpointWriter w(/*epoch=*/7);
    w.BeginSection("blob", 3);
    w.PutU32(42);
    w.PutString(std::string(300, 'z'));
    w.PutTuple(weird);
    w.PutTimestamp(kMinTimestamp);
    w.EndSection();
    w.BeginSection("tail", 1);
    w.PutU64(0xdeadbeefull);
    w.EndSection();
    ASSERT_TRUE(w.WriteTo(path).ok());
  }
  auto r = CheckpointReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->epoch(), 7u);
  auto sec = (*r)->BeginSection();
  ASSERT_TRUE(sec.ok()) << sec.status();
  EXPECT_EQ(sec->tag, "blob");
  EXPECT_EQ(sec->version, 3u);
  auto u = (*r)->GetU32();
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, 42u);
  auto s = (*r)->GetString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, std::string(300, 'z'));
  auto t = (*r)->GetTuple();
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->timestamp(), kMaxTimestamp);
  EXPECT_EQ(t->at(0).AsInt64(), -1);
  EXPECT_TRUE(t->at(1).is_null());
  EXPECT_TRUE(std::isnan(t->at(2).AsDouble()));
  EXPECT_EQ(t->at(4).AsInt64(), kMaxTimestamp);
  auto ts = (*r)->GetTimestamp();
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, kMinTimestamp);
  ASSERT_TRUE((*r)->EndSection().ok());
  auto sec2 = (*r)->BeginSection();
  ASSERT_TRUE(sec2.ok());
  EXPECT_EQ(sec2->tag, "tail");
  auto u64 = (*r)->GetU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0xdeadbeefull);
  ASSERT_TRUE((*r)->EndSection().ok());
}

TEST(CheckpointTest, UnconsumedSectionBytesAreAnError) {
  const std::string path = TempPath("tcq_ckpt_trailing");
  {
    CheckpointWriter w(1);
    w.BeginSection("two", 1);
    w.PutU32(1);
    w.PutU32(2);
    w.EndSection();
    ASSERT_TRUE(w.WriteTo(path).ok());
  }
  auto r = CheckpointReader::Open(path);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->BeginSection().ok());
  ASSERT_TRUE((*r)->GetU32().ok());
  // One u32 left unread: a restore that loses track of its layout must be
  // told, not silently misaligned into the next section.
  EXPECT_FALSE((*r)->EndSection().ok());
}

TEST(CheckpointTest, FlippedPayloadByteFailsChecksum) {
  const std::string path = TempPath("tcq_ckpt_flip");
  {
    CheckpointWriter w(2);
    w.BeginSection("blob", 1);
    w.PutString(std::string(200, 'q'));
    w.EndSection();
    ASSERT_TRUE(w.WriteTo(path).ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 60, SEEK_SET), 0);  // inside the section payload
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 60, SEEK_SET), 0);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto r = CheckpointReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status();
  auto sec = (*r)->BeginSection();
  ASSERT_FALSE(sec.ok());
  EXPECT_EQ(sec.status().code(), StatusCode::kIOError) << sec.status();
}

TEST(CheckpointTest, TruncatedFileIsTypedError) {
  const std::string path = TempPath("tcq_ckpt_trunc");
  {
    CheckpointWriter w(3);
    w.BeginSection("blob", 1);
    w.PutString(std::string(3 * kPageSize, 'w'));  // spans several pages
    w.EndSection();
    ASSERT_TRUE(w.WriteTo(path).ok());
  }
  std::filesystem::resize_file(path, kPageSize + kPageSize / 2);
  auto r = CheckpointReader::Open(path);
  if (r.ok()) {
    auto sec = (*r)->BeginSection();
    EXPECT_FALSE(sec.ok());
    EXPECT_EQ(sec.status().code(), StatusCode::kIOError) << sec.status();
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kIOError) << r.status();
  }
}

}  // namespace
}  // namespace tcq
