// Storage tests: tuple codec round-trips, page sealing and metadata,
// windowed scans touching only relevant pages, and buffer-pool replacement
// policies (including the broadcast-cyclic MRU advantage of §4.3).

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/scanner.h"
#include "storage/stream_store.h"

namespace tcq {
namespace {

SchemaRef Sch() {
  return Schema::Make({
      {"k", ValueType::kInt64, 0},
      {"name", ValueType::kString, 0},
      {"price", ValueType::kDouble, 0},
      {"flag", ValueType::kBool, 0},
      {"when", ValueType::kTimestamp, 0},
  });
}

Tuple Row(int64_t k, const std::string& name, double price, bool flag,
          Timestamp ts) {
  return Tuple::Make(Sch(),
                     {Value::Int64(k), Value::String(name),
                      Value::Double(price), Value::Bool(flag),
                      Value::TimestampVal(ts)},
                     ts);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TupleCodecTest, RoundTripsAllTypes) {
  TupleCodec codec(Sch());
  Tuple original = Row(42, "hello world", 3.25, true, 99);
  std::string buf;
  codec.Encode(original, &buf);
  size_t pos = 0;
  auto decoded = codec.Decode(buf, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->timestamp(), 99);
  EXPECT_EQ(pos, buf.size());
}

TEST(TupleCodecTest, RoundTripsNulls) {
  SchemaRef sch = Sch();
  TupleCodec codec(sch);
  Tuple original = Tuple::Make(
      sch, {Value::Null(), Value::Null(), Value::Null(), Value::Null(),
            Value::Null()},
      5);
  std::string buf;
  codec.Encode(original, &buf);
  size_t pos = 0;
  auto decoded = codec.Decode(buf, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->at(0).is_null());
}

TEST(TupleCodecTest, TruncatedBufferIsError) {
  TupleCodec codec(Sch());
  std::string buf;
  codec.Encode(Row(1, "abc", 1.0, false, 1), &buf);
  buf.resize(buf.size() / 2);
  size_t pos = 0;
  EXPECT_FALSE(codec.Decode(buf, &pos).ok());
}

TEST(StreamStoreTest, AppendSealsPagesAndScans) {
  auto store = StreamStore::Create(TempPath("tcq_store1.log"), Sch());
  ASSERT_TRUE(store.ok());
  const int kN = 2000;
  for (int i = 1; i <= kN; ++i) {
    ASSERT_TRUE(
        (*store)->Append(Row(i, "sym" + std::to_string(i % 50), i * 1.5,
                             i % 2 == 0, i))
            .ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->tuples_appended(), uint64_t(kN));
  EXPECT_GT((*store)->pages_sealed(), 5u);  // definitely multiple pages

  BufferPool pool({.capacity_pages = 8});
  WindowedScanner scanner(store->get(), &pool);
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(500, 600, &out).ok());
  ASSERT_EQ(out.size(), 101u);
  EXPECT_EQ(out.front().timestamp(), 500);
  EXPECT_EQ(out.back().timestamp(), 600);
  EXPECT_EQ(out.front().Get("name").AsString(), "sym0");
}

TEST(StreamStoreTest, TailPageIsReadableBeforeFlush) {
  auto store = StreamStore::Create(TempPath("tcq_store2.log"), Sch());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append(Row(1, "a", 1.0, false, 1)).ok());
  // Not flushed: still only the in-memory tail.
  EXPECT_EQ((*store)->pages_sealed(), 0u);
  EXPECT_EQ((*store)->NumPages(), 1u);

  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(0, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(StreamStoreTest, TailPageScansSeeFreshAppends) {
  // Regression: the mutable tail page must not be served from the buffer
  // pool's cache — a scan, more appends, then another scan must see the
  // new tuples.
  auto store = StreamStore::Create(TempPath("tcq_store_tail2.log"), Sch());
  ASSERT_TRUE(store.ok());
  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);

  ASSERT_TRUE((*store)->Append(Row(1, "a", 1.0, false, 1)).ok());
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.Scan(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 1u);

  ASSERT_TRUE((*store)->Append(Row(2, "b", 2.0, false, 2)).ok());
  out.clear();
  ASSERT_TRUE(scanner.Scan(0, 100, &out).ok());
  EXPECT_EQ(out.size(), 2u) << "stale tail page served from cache";
}

TEST(StreamStoreTest, PageMetadataPrunesScans) {
  auto store = StreamStore::Create(TempPath("tcq_store3.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 5000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t total_pages = (*store)->NumPages();
  // A narrow window touches a small fraction of pages.
  auto touched = (*store)->PagesInRange(100, 120);
  EXPECT_LT(touched.size(), total_pages / 10);
  auto all = (*store)->PagesInRange(kMinTimestamp, kMaxTimestamp);
  EXPECT_EQ(all.size(), total_pages);
}

TEST(StreamStoreTest, ReadPageOutOfRange) {
  auto store = StreamStore::Create(TempPath("tcq_store4.log"), Sch());
  ASSERT_TRUE(store.ok());
  std::string page;
  EXPECT_TRUE((*store)->ReadPage(5, &page).IsOutOfRange());
}

TEST(BufferPoolTest, HitsAndMisses) {
  auto store = StreamStore::Create(TempPath("tcq_store5.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 3000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  BufferPool pool({.capacity_pages = 4});
  ASSERT_TRUE(pool.Fetch(store->get(), 0).ok());
  ASSERT_TRUE(pool.Fetch(store->get(), 0).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, CapacityEnforced) {
  auto store = StreamStore::Create(TempPath("tcq_store6.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 5000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  BufferPool pool({.capacity_pages = 3});
  for (uint64_t p = 0; p < (*store)->NumPages(); ++p) {
    ASSERT_TRUE(pool.Fetch(store->get(), p).ok());
  }
  EXPECT_LE(pool.cached_pages(), 3u);
  EXPECT_GT(pool.evictions(), 0u);
}

class BufferPolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(BufferPolicyTest, AllPoliciesServeCorrectData) {
  auto store = StreamStore::Create(
      TempPath(std::string("tcq_store_p_") +
               ReplacementPolicyName(GetParam()) + ".log"),
      Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 4000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", double(i), false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());

  BufferPool pool({.capacity_pages = 4, .policy = GetParam()});
  WindowedScanner scanner(store->get(), &pool);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Timestamp lo = rng.UniformInt(1, 3000);
    std::vector<Tuple> out;
    ASSERT_TRUE(scanner.Scan(lo, lo + 99, &out).ok());
    ASSERT_EQ(out.size(), 100u) << "window at " << lo;
    EXPECT_EQ(out.front().timestamp(), lo);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, BufferPolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kMru,
                                           ReplacementPolicy::kClock),
                         [](const auto& info) {
                           return ReplacementPolicyName(info.param);
                         });

TEST(BufferPoolTest, MruBeatsLruOnCyclicScan) {
  // The broadcast-disk observation: a repeated cyclic scan larger than the
  // pool thrashes LRU (every access misses) but MRU retains a stable prefix.
  auto store = StreamStore::Create(TempPath("tcq_store_cyc.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 6000; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  uint64_t pages = (*store)->NumPages();
  ASSERT_GT(pages, 10u);

  auto run = [&](ReplacementPolicy policy) {
    BufferPool pool({.capacity_pages = size_t(pages / 2), .policy = policy});
    for (int cycle = 0; cycle < 5; ++cycle) {
      for (uint64_t p = 0; p < pages; ++p) {
        EXPECT_TRUE(pool.Fetch(store->get(), p).ok());
      }
    }
    return pool.HitRate();
  };
  double lru = run(ReplacementPolicy::kLru);
  double mru = run(ReplacementPolicy::kMru);
  EXPECT_GT(mru, lru + 0.2) << "MRU should dominate on cyclic re-scans";
}

TEST(ScannerTest, WindowInstanceIntegration) {
  auto store = StreamStore::Create(TempPath("tcq_store_w.log"), Sch());
  ASSERT_TRUE(store.ok());
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE((*store)->Append(Row(i, "x", 1.0, false, i)).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  BufferPool pool;
  WindowedScanner scanner(store->get(), &pool);

  auto loop = ForLoopSpec::Sliding({0}, 10, 100, 100);
  WindowIterator iter(loop);
  WindowInstance inst = iter.Next();
  std::vector<Tuple> out;
  ASSERT_TRUE(scanner.ScanWindow(inst, 0, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // [91, 100]
  EXPECT_TRUE(scanner.ScanWindow(inst, 7, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace tcq
