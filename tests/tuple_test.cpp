// Tests for Value, Schema, and Tuple.

#include <gtest/gtest.h>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace tcq {
namespace {

SchemaRef StockSchema(SourceId source = 0) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source},
      {"stockSymbol", ValueType::kString, source},
      {"closingPrice", ValueType::kDouble, source},
  });
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("MSFT").AsString(), "MSFT");
  EXPECT_EQ(Value::TimestampVal(99).AsTimestamp(), 99);
  EXPECT_EQ(Value::TimestampVal(99).type(), ValueType::kTimestamp);
}

TEST(ValueTest, NumericFamilyComparesAcrossTypes) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::TimestampVal(10).Compare(Value::Int64(9)), 0);
  EXPECT_EQ(Value::TimestampVal(10).Compare(Value::Int64(10)), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 and 2^62+1 are indistinguishable as doubles.
  int64_t big = int64_t{1} << 62;
  EXPECT_LT(Value::Int64(big).Compare(Value::Int64(big + 1)), 0);
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value::String("AAPL").Compare(Value::String("MSFT")), 0);
  EXPECT_EQ(Value::String("MSFT").Compare(Value::String("MSFT")), 0);
}

TEST(ValueTest, NullComparesLowest) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::String("").Compare(Value::Null()), 0);
}

TEST(ValueTest, EqualNumericsHashEqually) {
  EXPECT_EQ(Value::Int64(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_EQ(Value::Int64(7).Hash(), Value::TimestampVal(7).Hash());
}

TEST(ValueTest, ToStringRendersAllTypes) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int64(3).ToString(), "3");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::TimestampVal(5).ToString(), "@5");
}

TEST(SchemaTest, IndexLookup) {
  SchemaRef s = StockSchema();
  ASSERT_TRUE(s->IndexOf("closingPrice").has_value());
  EXPECT_EQ(*s->IndexOf("closingPrice"), 2u);
  EXPECT_FALSE(s->IndexOf("volume").has_value());
}

TEST(SchemaTest, SourceQualifiedLookup) {
  SchemaRef joined = Schema::Concat(StockSchema(0), StockSchema(1));
  EXPECT_EQ(*joined->IndexOf("closingPrice", 0), 2u);
  EXPECT_EQ(*joined->IndexOf("closingPrice", 1), 5u);
  EXPECT_FALSE(joined->IndexOf("closingPrice", 2).has_value());
  EXPECT_EQ(joined->sources(), SourceBit(0) | SourceBit(1));
}

TEST(SchemaTest, ValidateChecksArityAndTypes) {
  SchemaRef s = StockSchema();
  EXPECT_TRUE(s->Validate({Value::TimestampVal(1), Value::String("MSFT"),
                           Value::Double(50.0)})
                  .ok());
  EXPECT_TRUE(s->Validate({Value::TimestampVal(1), Value::String("MSFT")})
                  .IsInvalidArgument());
  EXPECT_TRUE(s->Validate({Value::TimestampVal(1), Value::Int64(7),
                           Value::Double(50.0)})
                  .IsInvalidArgument());
  // Null allowed anywhere; int64 accepted for timestamp fields.
  EXPECT_TRUE(
      s->Validate({Value::Int64(1), Value::Null(), Value::Double(1.0)}).ok());
}

TEST(TupleTest, MakeAndAccess) {
  Tuple t = Tuple::Make(
      StockSchema(),
      {Value::TimestampVal(5), Value::String("MSFT"), Value::Double(51.5)}, 5);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.timestamp(), 5);
  EXPECT_EQ(t.num_fields(), 3u);
  EXPECT_EQ(t.Get("stockSymbol").AsString(), "MSFT");
  EXPECT_EQ(t.sources(), SourceBit(0));
}

TEST(TupleTest, ConcatMergesFieldsSourcesAndTimestamps) {
  Tuple a = Tuple::Make(
      StockSchema(0),
      {Value::TimestampVal(5), Value::String("MSFT"), Value::Double(51.5)}, 5);
  Tuple b = Tuple::Make(
      StockSchema(1),
      {Value::TimestampVal(9), Value::String("AAPL"), Value::Double(20.0)}, 9);
  SchemaRef joined = Schema::Concat(a.schema(), b.schema());
  Tuple c = Tuple::Concat(a, b, joined);
  EXPECT_EQ(c.num_fields(), 6u);
  EXPECT_EQ(c.timestamp(), 9);  // max of inputs
  EXPECT_EQ(c.sources(), SourceBit(0) | SourceBit(1));
  EXPECT_EQ(c.at(1).AsString(), "MSFT");
  EXPECT_EQ(c.at(4).AsString(), "AAPL");
}

TEST(TupleTest, CopiesShareData) {
  Tuple a = Tuple::Make(
      StockSchema(),
      {Value::TimestampVal(5), Value::String("MSFT"), Value::Double(51.5)}, 5);
  Tuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.at(0), &b.at(0));  // same payload, not a deep copy
}

TEST(TupleTest, EqualityIsValueBased) {
  auto mk = [](double price) {
    return Tuple::Make(StockSchema(),
                       {Value::TimestampVal(5), Value::String("MSFT"),
                        Value::Double(price)},
                       5);
  };
  EXPECT_EQ(mk(51.5), mk(51.5));
  EXPECT_FALSE(mk(51.5) == mk(52.0));
}

}  // namespace
}  // namespace tcq
