// Window semantics tests: the paper's §4.1 examples (snapshot, landmark,
// sliding, hopping, backward), watermark-driven online firing, and the
// aggregate strategies of §4.1.2.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "window/time.h"
#include "window/window_exec.h"
#include "window/window_spec.h"

namespace tcq {
namespace {

SchemaRef StockSchema(SourceId source) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source},
      {"stockSymbol", ValueType::kString, source},
      {"closingPrice", ValueType::kDouble, source},
  });
}

Tuple Stock(SourceId source, Timestamp ts, const std::string& sym,
            double price) {
  return Tuple::Make(
      StockSchema(source),
      {Value::TimestampVal(ts), Value::String(sym), Value::Double(price)}, ts);
}

// A daily stock history: one MSFT entry per trading day 1..n with price f(d).
StreamHistory MsftHistory(Timestamp n,
                          const std::function<double(Timestamp)>& price) {
  StreamHistory h;
  for (Timestamp d = 1; d <= n; ++d) h.Append(Stock(0, d, "MSFT", price(d)));
  return h;
}

// --- ForLoopSpec classification ---------------------------------------------

TEST(WindowSpecTest, SnapshotClassification) {
  auto spec = ForLoopSpec::Snapshot(0, 1, 5);
  EXPECT_EQ(spec.Classify(), WindowClass::kSnapshot);
  EXPECT_TRUE(spec.Bounded());
  EXPECT_EQ(spec.IterationCount().value(), 1u);
}

TEST(WindowSpecTest, LandmarkClassification) {
  auto spec = ForLoopSpec::Landmark(0, 101, 101, 1100);
  EXPECT_EQ(spec.Classify(), WindowClass::kLandmark);
  EXPECT_EQ(spec.IterationCount().value(), 1000u);
}

TEST(WindowSpecTest, SlidingClassification) {
  auto spec = ForLoopSpec::Sliding({0}, 5, 10, 30);
  EXPECT_EQ(spec.Classify(), WindowClass::kSliding);
}

TEST(WindowSpecTest, HoppingClassification) {
  // Paper example 4: windows of 5 days every 5 days — hop == width is still
  // "sliding" (nothing skipped); hop > width skips data and is hopping.
  auto tumbling = ForLoopSpec::Sliding({0}, 5, 5, 50, 5);
  EXPECT_EQ(tumbling.Classify(), WindowClass::kSliding);
  auto hopping = ForLoopSpec::Sliding({0}, 5, 5, 50, 8);
  EXPECT_EQ(hopping.Classify(), WindowClass::kHopping);
}

TEST(WindowSpecTest, BackwardClassification) {
  auto spec = ForLoopSpec::Backward(0, 10, 100, 10, 5);
  EXPECT_EQ(spec.Classify(), WindowClass::kBackward);
  EXPECT_EQ(spec.IterationCount().value(), 5u);
}

TEST(WindowSpecTest, UnboundedLoop) {
  ForLoopSpec spec;
  spec.condition = {LoopCondition::Kind::kAlways, 0};
  spec.windows.push_back({0, WindowBound::AtT(-4), WindowBound::AtT()});
  EXPECT_FALSE(spec.Bounded());
  EXPECT_FALSE(spec.IterationCount().has_value());
}

TEST(WindowSpecTest, IteratorProducesConcreteRanges) {
  auto spec = ForLoopSpec::Sliding({0, 1}, 5, 10, 12);
  WindowIterator iter(spec);
  ASSERT_TRUE(iter.HasNext());
  WindowInstance w0 = iter.Next();
  EXPECT_EQ(w0.t, 10);
  EXPECT_EQ(w0.RangeFor(0).value(), (std::pair<Timestamp, Timestamp>{6, 10}));
  EXPECT_EQ(w0.RangeFor(1).value(), (std::pair<Timestamp, Timestamp>{6, 10}));
  EXPECT_FALSE(w0.RangeFor(7).has_value());
  iter.Next();
  WindowInstance w2 = iter.Next();
  EXPECT_EQ(w2.t, 12);
  EXPECT_FALSE(iter.HasNext());
}

TEST(WindowSpecTest, ToStringRendersLoop) {
  auto spec = ForLoopSpec::Landmark(0, 101, 101, 1100);
  EXPECT_EQ(spec.ToString(),
            "for (t=101; t <= 1100; t+=1) { WindowIs(s0, 101, t); }");
}

// --- Paper §4.1 examples end to end ------------------------------------------

// --- StreamHistory ----------------------------------------------------------

TEST(StreamHistoryTest, OutOfOrderAppendKeepsTimestampOrder) {
  // Streams deliver roughly in timestamp order; slight disorder must land
  // tuples at their sorted position, not at the tail.
  StreamHistory h;
  h.Append(Stock(0, 1, "A", 1.0));
  h.Append(Stock(0, 5, "B", 2.0));
  h.Append(Stock(0, 3, "C", 3.0));  // late arrival
  h.Append(Stock(0, 5, "D", 4.0));  // duplicate timestamp
  h.Append(Stock(0, 2, "E", 5.0));  // late again
  ASSERT_EQ(h.size(), 5u);
  std::vector<Tuple> all;
  h.Range(0, 100, &all);
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].timestamp(), all[i].timestamp());
  }
}

TEST(StreamHistoryTest, RangeIsClosedOnBothEnds) {
  // WindowIs(S, l, r) is a closed interval (§4.1): Range(l, r) must include
  // tuples at exactly l and exactly r.
  StreamHistory h = MsftHistory(10, [](Timestamp d) { return double(d); });
  std::vector<Tuple> out;
  h.Range(3, 7, &out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().timestamp(), 3);
  EXPECT_EQ(out.back().timestamp(), 7);

  out.clear();
  h.Range(4, 4, &out);  // degenerate window: a single instant
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp(), 4);

  out.clear();
  h.Range(11, 20, &out);  // entirely past the data
  EXPECT_TRUE(out.empty());
}

TEST(WindowExecTest, WindowIsIncludesBothEndpoints) {
  // Pin the closed-interval contract end to end: a snapshot window [l, r]
  // returns the tuples at l and at r, not a half-open slice.
  StreamHistory h = MsftHistory(10, [](Timestamp d) { return double(d); });
  WindowedQuery q;
  q.loop = ForLoopSpec::Snapshot(0, 3, 7);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].tuples.size(), 5u);  // days 3,4,5,6,7
  EXPECT_EQ(results[0].tuples.front().timestamp(), 3);
  EXPECT_EQ(results[0].tuples.back().timestamp(), 7);
}

TEST(WindowExecTest, PaperExample1Snapshot) {
  // "Select the closing prices for MSFT on the first five days of trading."
  StreamHistory h = MsftHistory(20, [](Timestamp d) { return 40.0 + d; });
  WindowedQuery q;
  q.loop = ForLoopSpec::Snapshot(0, 1, 5);
  q.predicates = {MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq,
                                   Value::String("MSFT"))};
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].tuples.size(), 5u);
  for (const Tuple& t : results[0].tuples) {
    EXPECT_LE(t.timestamp(), 5);
    EXPECT_GE(t.timestamp(), 1);
  }
}

TEST(WindowExecTest, PaperExample2Landmark) {
  // "All days after the hundredth trading day on which MSFT closed over
  // $50, standing for 1000 days": for (t=101; t<=1100; t++) window [101,t].
  StreamHistory h = MsftHistory(150, [](Timestamp d) {
    return d % 2 == 0 ? 55.0 : 45.0;  // closes above 50 on even days
  });
  WindowedQuery q;
  q.loop = ForLoopSpec::Landmark(0, 101, 101, 110);
  q.predicates = {MakeCompareConst({0, "closingPrice"}, CmpOp::kGt,
                                   Value::Double(50.0))};
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 10u);
  // Window [101, 101]: day 101 is odd -> empty; [101, 102] has day 102; the
  // result set grows as the right end expands over even days.
  EXPECT_TRUE(results[0].tuples.empty());
  EXPECT_EQ(results[1].tuples.size(), 1u);
  EXPECT_EQ(results[9].tuples.size(), 5u);  // even days in [101, 110]
}

TEST(WindowExecTest, PaperExample5SlidingSelfJoin) {
  // "Stocks that closed higher than MSFT over windows of the five most
  // recent days": self-join c1 x c2 with c2.price > c1.price and equal
  // timestamps, c1 filtered to MSFT. Self-join = same data as two sources.
  StreamHistory c1, c2;
  Rng rng(1);
  for (Timestamp d = 1; d <= 30; ++d) {
    c1.Append(Stock(0, d, "MSFT", 50.0));
    c2.Append(Stock(1, d, "MSFT", 50.0));
    double aapl = d % 3 == 0 ? 60.0 : 40.0;  // beats MSFT every 3rd day
    c1.Append(Stock(0, d, "AAPL", aapl));
    c2.Append(Stock(1, d, "AAPL", aapl));
  }
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0, 1}, 5, 5, 24);
  q.predicates = {
      MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq, Value::String("MSFT")),
      MakeCompareAttrs({1, "closingPrice"}, CmpOp::kGt, {0, "closingPrice"}),
      MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq, {0, "timestamp"}),
  };
  auto results = RunOverHistory(q, {{0, std::move(c1)}, {1, std::move(c2)}});
  ASSERT_EQ(results.size(), 20u);
  for (const WindowResult& r : results) {
    // Each 5-day window contains either 1 or 2 third-days.
    size_t third_days = 0;
    for (Timestamp d = r.t - 4; d <= r.t; ++d) {
      if (d % 3 == 0) ++third_days;
    }
    EXPECT_EQ(r.tuples.size(), third_days) << "window ending " << r.t;
    for (const Tuple& m : r.tuples) {
      EXPECT_EQ(m.Get("stockSymbol").AsString(), "MSFT");
    }
  }
}

TEST(WindowExecTest, HoppingWindowsSkipData) {
  // hop (8) > width (5): timestamps 6..8 of each period never appear.
  StreamHistory h = MsftHistory(40, [](Timestamp) { return 50.0; });
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 5, 5, 40, 8);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  std::set<Timestamp> covered;
  for (const auto& r : results) {
    for (const Tuple& t : r.tuples) covered.insert(t.timestamp());
  }
  EXPECT_FALSE(covered.contains(6));
  EXPECT_FALSE(covered.contains(7));
  EXPECT_FALSE(covered.contains(8));
  EXPECT_TRUE(covered.contains(5));
  EXPECT_TRUE(covered.contains(9));
}

TEST(WindowExecTest, BackwardWindowsBrowseHistory) {
  StreamHistory h = MsftHistory(100, [](Timestamp d) { return double(d); });
  WindowedQuery q;
  q.loop = ForLoopSpec::Backward(0, 10, 100, 10, 3);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].t, 100);  // [91, 100]
  EXPECT_EQ(results[1].t, 90);   // [81, 90]
  EXPECT_EQ(results[2].t, 80);   // [71, 80]
  EXPECT_EQ(results[0].tuples.size(), 10u);
  EXPECT_EQ(results[2].tuples.front().timestamp(), 71);
}

// --- Online runner ------------------------------------------------------------

TEST(OnlineWindowTest, FiresOnlyWhenWatermarkPasses) {
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 3, 3, 9);
  OnlineWindowRunner runner(q);
  std::vector<WindowResult> fired;
  auto cb = [&](const WindowResult& r) { fired.push_back(r); };

  for (Timestamp d = 1; d <= 4; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  // Watermark at 4: windows ending at 3 and 4 fired.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].t, 3);
  EXPECT_EQ(fired[0].tuples.size(), 3u);

  for (Timestamp d = 5; d <= 9; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  EXPECT_EQ(fired.size(), 7u);
  EXPECT_TRUE(runner.Done());
}

TEST(OnlineWindowTest, JoinWaitsForSlowestStream) {
  // Partial-order time: a two-stream window fires only when BOTH streams
  // pass its right end.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0, 1}, 2, 2, 4);
  q.predicates = {
      MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq, {0, "timestamp"})};
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  auto cb = [&](const WindowResult&) { ++fired; };

  for (Timestamp d = 1; d <= 4; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  EXPECT_EQ(fired, 0u);  // stream 1 has not arrived at all

  runner.Ingest(1, Stock(1, 1, "MSFT", 50.0));
  runner.Ingest(1, Stock(1, 2, "MSFT", 50.0));
  runner.Poll(cb);
  EXPECT_EQ(fired, 1u);  // window [1,2] complete on both streams

  runner.AdvanceWatermark(1, 4);  // heartbeat: stream 1 is quiet but current
  runner.Poll(cb);
  EXPECT_EQ(fired, 3u);
}

TEST(OnlineWindowTest, SlidingHistoryIsPruned) {
  WindowedQuery q;
  ForLoopSpec loop = ForLoopSpec::Sliding({0}, 10, 10, 100000);
  q.loop = loop;
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  for (Timestamp d = 1; d <= 5000; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
    runner.Poll([&](const WindowResult&) { ++fired; });
  }
  EXPECT_GT(fired, 4000u);
  // Only about one window's worth of history is retained.
  EXPECT_LE(runner.buffered_tuples(), 32u);
}

TEST(OnlineWindowTest, LandmarkHistoryIsKept) {
  WindowedQuery q;
  q.loop = ForLoopSpec::Landmark(0, 1, 1, 100000);
  OnlineWindowRunner runner(q);
  for (Timestamp d = 1; d <= 1000; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll([](const WindowResult&) {});
  EXPECT_EQ(runner.buffered_tuples(), 1000u);  // left end is fixed: keep all
}

// --- Watermarks & time transforms ----------------------------------------------

TEST(WatermarkTest, TracksPerSourceAndJoint) {
  WatermarkTracker wm;
  EXPECT_EQ(wm.WatermarkOf(0), kMinTimestamp);
  wm.Update(0, 10);
  wm.Update(1, 5);
  wm.Update(0, 7);  // regression ignored
  EXPECT_EQ(wm.WatermarkOf(0), 10);
  EXPECT_EQ(wm.MinWatermark(SourceBit(0) | SourceBit(1)), 5);
  EXPECT_EQ(wm.MinWatermark(SourceBit(2)), kMinTimestamp);
  EXPECT_EQ(wm.GlobalWatermark(), 5);
}

TEST(WatermarkTest, EmptySourceSetIsVacuouslyComplete) {
  // Regression: min over an empty source set is the identity of min —
  // kMaxTimestamp — not kMinTimestamp. A participant watching no sources
  // must never hold a joint watermark back.
  WatermarkTracker wm;
  EXPECT_EQ(wm.MinWatermark(0), kMaxTimestamp);
  wm.Update(0, 10);
  EXPECT_EQ(wm.MinWatermark(0), kMaxTimestamp);  // unaffected by updates
}

TEST(WatermarkTest, OrderedOnlyBelowJointWatermark) {
  WatermarkTracker wm;
  wm.Update(0, 10);
  wm.Update(1, 5);
  EXPECT_TRUE(wm.Ordered(0, 3, 1, 4));
  EXPECT_FALSE(wm.Ordered(0, 8, 1, 4));  // 8 > joint watermark 5
}

TEST(TimeTransformTest, RoundTrips) {
  TimeTransform tt;
  tt.Observe(1, 1000);
  tt.Observe(2, 1500);
  tt.Observe(5, 4000);
  EXPECT_EQ(tt.ToPhysical(1), 1000);
  EXPECT_EQ(tt.ToPhysical(3), 1500);  // nearest at-or-before
  EXPECT_EQ(tt.ToPhysical(0), kMinTimestamp);
  EXPECT_EQ(tt.ToLogical(1500), 2);
  EXPECT_EQ(tt.ToLogical(3999), 2);
  EXPECT_EQ(tt.ToLogical(4000), 5);
  EXPECT_EQ(tt.ToLogical(10), kMinTimestamp);
}

// --- Aggregate strategies (§4.1.2) -----------------------------------------------

TEST(WindowAggregateTest, LandmarkMaxIncrementalMatchesRecompute) {
  StreamHistory h = MsftHistory(
      200, [](Timestamp d) { return 50.0 + ((d * 37) % 23) - 11; });
  auto loop = ForLoopSpec::Landmark(0, 1, 1, 200);
  size_t state = 0;
  auto results =
      RunAggregateOverHistory(loop, AggFn::kMax, {0, "closingPrice"}, h,
                              1u << 16, &state);
  ASSERT_EQ(results.size(), 200u);
  // Cross-check a few against brute force.
  for (Timestamp t : {1, 50, 200}) {
    double expect = -1;
    std::vector<Tuple> content;
    h.Range(1, t, &content);
    for (const Tuple& tup : content) {
      expect = std::max(expect, tup.Get("closingPrice").AsDouble());
    }
    EXPECT_DOUBLE_EQ(results[size_t(t) - 1].value.AsDouble(), expect);
  }
  EXPECT_LE(state, sizeof(LandmarkAggregator));  // O(1) state claim
}

TEST(WindowAggregateTest, SlidingMaxMatchesRecomputeAndNeedsWindowState) {
  StreamHistory h = MsftHistory(
      300, [](Timestamp d) { return 50.0 + ((d * 37) % 23) - 11; });
  auto loop = ForLoopSpec::Sliding({0}, 20, 20, 300);
  size_t state = 0;
  auto results = RunAggregateOverHistory(loop, AggFn::kMax,
                                         {0, "closingPrice"}, h, 1u << 16,
                                         &state);
  ASSERT_EQ(results.size(), 281u);
  for (size_t i = 0; i < results.size(); i += 40) {
    Timestamp t = results[i].t;
    double expect = -1;
    std::vector<Tuple> content;
    h.Range(t - 19, t, &content);
    for (const Tuple& tup : content) {
      expect = std::max(expect, tup.Get("closingPrice").AsDouble());
    }
    EXPECT_DOUBLE_EQ(results[i].value.AsDouble(), expect) << "t=" << t;
  }
  EXPECT_GT(state, sizeof(LandmarkAggregator));  // must hold window contents
}

TEST(WindowAggregateTest, HoppingRecomputesCorrectly) {
  StreamHistory h = MsftHistory(100, [](Timestamp d) { return double(d); });
  auto loop = ForLoopSpec::Sliding({0}, 5, 5, 100, 12);  // hop > width
  auto results = RunAggregateOverHistory(loop, AggFn::kSum,
                                         {0, "closingPrice"}, h);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    double expect = 0;
    for (Timestamp d = r.t - 4; d <= r.t; ++d) expect += double(d);
    EXPECT_DOUBLE_EQ(r.value.AsDouble(), expect);
  }
}

TEST(WindowAggregateTest, CountAvgMinOverSliding) {
  StreamHistory h = MsftHistory(50, [](Timestamp d) { return double(d); });
  auto loop = ForLoopSpec::Sliding({0}, 10, 10, 50);
  auto count = RunAggregateOverHistory(loop, AggFn::kCount,
                                       {0, "closingPrice"}, h);
  auto avg =
      RunAggregateOverHistory(loop, AggFn::kAvg, {0, "closingPrice"}, h);
  auto min =
      RunAggregateOverHistory(loop, AggFn::kMin, {0, "closingPrice"}, h);
  EXPECT_EQ(count.back().value.AsInt64(), 10);
  EXPECT_DOUBLE_EQ(avg.back().value.AsDouble(), (41 + 50) / 2.0);
  EXPECT_DOUBLE_EQ(min.back().value.AsDouble(), 41.0);
}

}  // namespace
}  // namespace tcq
