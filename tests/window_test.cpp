// Window semantics tests: the paper's §4.1 examples (snapshot, landmark,
// sliding, hopping, backward), watermark-driven online firing, and the
// aggregate strategies of §4.1.2.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "window/time.h"
#include "window/window_exec.h"
#include "window/window_spec.h"

namespace tcq {
namespace {

SchemaRef StockSchema(SourceId source) {
  return Schema::Make({
      {"timestamp", ValueType::kTimestamp, source},
      {"stockSymbol", ValueType::kString, source},
      {"closingPrice", ValueType::kDouble, source},
  });
}

Tuple Stock(SourceId source, Timestamp ts, const std::string& sym,
            double price) {
  return Tuple::Make(
      StockSchema(source),
      {Value::TimestampVal(ts), Value::String(sym), Value::Double(price)}, ts);
}

// A daily stock history: one MSFT entry per trading day 1..n with price f(d).
StreamHistory MsftHistory(Timestamp n,
                          const std::function<double(Timestamp)>& price) {
  StreamHistory h;
  for (Timestamp d = 1; d <= n; ++d) h.Append(Stock(0, d, "MSFT", price(d)));
  return h;
}

// --- ForLoopSpec classification ---------------------------------------------

TEST(WindowSpecTest, SnapshotClassification) {
  auto spec = ForLoopSpec::Snapshot(0, 1, 5);
  EXPECT_EQ(spec.Classify(), WindowClass::kSnapshot);
  EXPECT_TRUE(spec.Bounded());
  EXPECT_EQ(spec.IterationCount().value(), 1u);
}

TEST(WindowSpecTest, LandmarkClassification) {
  auto spec = ForLoopSpec::Landmark(0, 101, 101, 1100);
  EXPECT_EQ(spec.Classify(), WindowClass::kLandmark);
  EXPECT_EQ(spec.IterationCount().value(), 1000u);
}

TEST(WindowSpecTest, SlidingClassification) {
  auto spec = ForLoopSpec::Sliding({0}, 5, 10, 30);
  EXPECT_EQ(spec.Classify(), WindowClass::kSliding);
}

TEST(WindowSpecTest, HoppingClassification) {
  // Paper example 4: windows of 5 days every 5 days — hop == width is still
  // "sliding" (nothing skipped); hop > width skips data and is hopping.
  auto tumbling = ForLoopSpec::Sliding({0}, 5, 5, 50, 5);
  EXPECT_EQ(tumbling.Classify(), WindowClass::kSliding);
  auto hopping = ForLoopSpec::Sliding({0}, 5, 5, 50, 8);
  EXPECT_EQ(hopping.Classify(), WindowClass::kHopping);
}

TEST(WindowSpecTest, BackwardClassification) {
  auto spec = ForLoopSpec::Backward(0, 10, 100, 10, 5);
  EXPECT_EQ(spec.Classify(), WindowClass::kBackward);
  EXPECT_EQ(spec.IterationCount().value(), 5u);
}

TEST(WindowSpecTest, UnboundedLoop) {
  ForLoopSpec spec;
  spec.condition = {LoopCondition::Kind::kAlways, 0};
  spec.windows.push_back({0, WindowBound::AtT(-4), WindowBound::AtT()});
  EXPECT_FALSE(spec.Bounded());
  EXPECT_FALSE(spec.IterationCount().has_value());
}

TEST(WindowSpecTest, IteratorProducesConcreteRanges) {
  auto spec = ForLoopSpec::Sliding({0, 1}, 5, 10, 12);
  WindowIterator iter(spec);
  ASSERT_TRUE(iter.HasNext());
  WindowInstance w0 = iter.Next();
  EXPECT_EQ(w0.t, 10);
  EXPECT_EQ(w0.RangeFor(0).value(), (std::pair<Timestamp, Timestamp>{6, 10}));
  EXPECT_EQ(w0.RangeFor(1).value(), (std::pair<Timestamp, Timestamp>{6, 10}));
  EXPECT_FALSE(w0.RangeFor(7).has_value());
  iter.Next();
  WindowInstance w2 = iter.Next();
  EXPECT_EQ(w2.t, 12);
  EXPECT_FALSE(iter.HasNext());
}

TEST(WindowSpecTest, ToStringRendersLoop) {
  auto spec = ForLoopSpec::Landmark(0, 101, 101, 1100);
  EXPECT_EQ(spec.ToString(),
            "for (t=101; t <= 1100; t+=1) { WindowIs(s0, 101, t); }");
}

// --- Paper §4.1 examples end to end ------------------------------------------

// --- StreamHistory ----------------------------------------------------------

TEST(StreamHistoryTest, OutOfOrderAppendKeepsTimestampOrder) {
  // Streams deliver roughly in timestamp order; slight disorder must land
  // tuples at their sorted position, not at the tail.
  StreamHistory h;
  h.Append(Stock(0, 1, "A", 1.0));
  h.Append(Stock(0, 5, "B", 2.0));
  h.Append(Stock(0, 3, "C", 3.0));  // late arrival
  h.Append(Stock(0, 5, "D", 4.0));  // duplicate timestamp
  h.Append(Stock(0, 2, "E", 5.0));  // late again
  ASSERT_EQ(h.size(), 5u);
  std::vector<Tuple> all;
  h.Range(0, 100, &all);
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].timestamp(), all[i].timestamp());
  }
}

TEST(StreamHistoryTest, RangeIsClosedOnBothEnds) {
  // WindowIs(S, l, r) is a closed interval (§4.1): Range(l, r) must include
  // tuples at exactly l and exactly r.
  StreamHistory h = MsftHistory(10, [](Timestamp d) { return double(d); });
  std::vector<Tuple> out;
  h.Range(3, 7, &out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().timestamp(), 3);
  EXPECT_EQ(out.back().timestamp(), 7);

  out.clear();
  h.Range(4, 4, &out);  // degenerate window: a single instant
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp(), 4);

  out.clear();
  h.Range(11, 20, &out);  // entirely past the data
  EXPECT_TRUE(out.empty());
}

TEST(WindowExecTest, WindowIsIncludesBothEndpoints) {
  // Pin the closed-interval contract end to end: a snapshot window [l, r]
  // returns the tuples at l and at r, not a half-open slice.
  StreamHistory h = MsftHistory(10, [](Timestamp d) { return double(d); });
  WindowedQuery q;
  q.loop = ForLoopSpec::Snapshot(0, 3, 7);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].tuples.size(), 5u);  // days 3,4,5,6,7
  EXPECT_EQ(results[0].tuples.front().timestamp(), 3);
  EXPECT_EQ(results[0].tuples.back().timestamp(), 7);
}

TEST(WindowExecTest, PaperExample1Snapshot) {
  // "Select the closing prices for MSFT on the first five days of trading."
  StreamHistory h = MsftHistory(20, [](Timestamp d) { return 40.0 + d; });
  WindowedQuery q;
  q.loop = ForLoopSpec::Snapshot(0, 1, 5);
  q.predicates = {MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq,
                                   Value::String("MSFT"))};
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].tuples.size(), 5u);
  for (const Tuple& t : results[0].tuples) {
    EXPECT_LE(t.timestamp(), 5);
    EXPECT_GE(t.timestamp(), 1);
  }
}

TEST(WindowExecTest, PaperExample2Landmark) {
  // "All days after the hundredth trading day on which MSFT closed over
  // $50, standing for 1000 days": for (t=101; t<=1100; t++) window [101,t].
  StreamHistory h = MsftHistory(150, [](Timestamp d) {
    return d % 2 == 0 ? 55.0 : 45.0;  // closes above 50 on even days
  });
  WindowedQuery q;
  q.loop = ForLoopSpec::Landmark(0, 101, 101, 110);
  q.predicates = {MakeCompareConst({0, "closingPrice"}, CmpOp::kGt,
                                   Value::Double(50.0))};
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 10u);
  // Window [101, 101]: day 101 is odd -> empty; [101, 102] has day 102; the
  // result set grows as the right end expands over even days.
  EXPECT_TRUE(results[0].tuples.empty());
  EXPECT_EQ(results[1].tuples.size(), 1u);
  EXPECT_EQ(results[9].tuples.size(), 5u);  // even days in [101, 110]
}

TEST(WindowExecTest, PaperExample5SlidingSelfJoin) {
  // "Stocks that closed higher than MSFT over windows of the five most
  // recent days": self-join c1 x c2 with c2.price > c1.price and equal
  // timestamps, c1 filtered to MSFT. Self-join = same data as two sources.
  StreamHistory c1, c2;
  Rng rng(1);
  for (Timestamp d = 1; d <= 30; ++d) {
    c1.Append(Stock(0, d, "MSFT", 50.0));
    c2.Append(Stock(1, d, "MSFT", 50.0));
    double aapl = d % 3 == 0 ? 60.0 : 40.0;  // beats MSFT every 3rd day
    c1.Append(Stock(0, d, "AAPL", aapl));
    c2.Append(Stock(1, d, "AAPL", aapl));
  }
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0, 1}, 5, 5, 24);
  q.predicates = {
      MakeCompareConst({0, "stockSymbol"}, CmpOp::kEq, Value::String("MSFT")),
      MakeCompareAttrs({1, "closingPrice"}, CmpOp::kGt, {0, "closingPrice"}),
      MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq, {0, "timestamp"}),
  };
  auto results = RunOverHistory(q, {{0, std::move(c1)}, {1, std::move(c2)}});
  ASSERT_EQ(results.size(), 20u);
  for (const WindowResult& r : results) {
    // Each 5-day window contains either 1 or 2 third-days.
    size_t third_days = 0;
    for (Timestamp d = r.t - 4; d <= r.t; ++d) {
      if (d % 3 == 0) ++third_days;
    }
    EXPECT_EQ(r.tuples.size(), third_days) << "window ending " << r.t;
    for (const Tuple& m : r.tuples) {
      EXPECT_EQ(m.Get("stockSymbol").AsString(), "MSFT");
    }
  }
}

TEST(WindowExecTest, HoppingWindowsSkipData) {
  // hop (8) > width (5): timestamps 6..8 of each period never appear.
  StreamHistory h = MsftHistory(40, [](Timestamp) { return 50.0; });
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 5, 5, 40, 8);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  std::set<Timestamp> covered;
  for (const auto& r : results) {
    for (const Tuple& t : r.tuples) covered.insert(t.timestamp());
  }
  EXPECT_FALSE(covered.contains(6));
  EXPECT_FALSE(covered.contains(7));
  EXPECT_FALSE(covered.contains(8));
  EXPECT_TRUE(covered.contains(5));
  EXPECT_TRUE(covered.contains(9));
}

TEST(WindowExecTest, BackwardWindowsBrowseHistory) {
  StreamHistory h = MsftHistory(100, [](Timestamp d) { return double(d); });
  WindowedQuery q;
  q.loop = ForLoopSpec::Backward(0, 10, 100, 10, 3);
  auto results = RunOverHistory(q, {{0, std::move(h)}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].t, 100);  // [91, 100]
  EXPECT_EQ(results[1].t, 90);   // [81, 90]
  EXPECT_EQ(results[2].t, 80);   // [71, 80]
  EXPECT_EQ(results[0].tuples.size(), 10u);
  EXPECT_EQ(results[2].tuples.front().timestamp(), 71);
}

// --- Online runner ------------------------------------------------------------

TEST(OnlineWindowTest, FiresOnlyWhenWatermarkPasses) {
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 3, 3, 9);
  OnlineWindowRunner runner(q);
  std::vector<WindowResult> fired;
  auto cb = [&](const WindowResult& r) { fired.push_back(r); };

  for (Timestamp d = 1; d <= 4; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  // Watermark at 4: windows ending at 3 and 4 fired.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].t, 3);
  EXPECT_EQ(fired[0].tuples.size(), 3u);

  for (Timestamp d = 5; d <= 9; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  EXPECT_EQ(fired.size(), 7u);
  EXPECT_TRUE(runner.Done());
}

TEST(OnlineWindowTest, JoinWaitsForSlowestStream) {
  // Partial-order time: a two-stream window fires only when BOTH streams
  // pass its right end.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0, 1}, 2, 2, 4);
  q.predicates = {
      MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq, {0, "timestamp"})};
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  auto cb = [&](const WindowResult&) { ++fired; };

  for (Timestamp d = 1; d <= 4; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll(cb);
  EXPECT_EQ(fired, 0u);  // stream 1 has not arrived at all

  runner.Ingest(1, Stock(1, 1, "MSFT", 50.0));
  runner.Ingest(1, Stock(1, 2, "MSFT", 50.0));
  runner.Poll(cb);
  EXPECT_EQ(fired, 1u);  // window [1,2] complete on both streams

  runner.AdvanceWatermark(1, 4);  // heartbeat: stream 1 is quiet but current
  runner.Poll(cb);
  EXPECT_EQ(fired, 3u);
}

TEST(OnlineWindowTest, SlidingHistoryIsPruned) {
  WindowedQuery q;
  ForLoopSpec loop = ForLoopSpec::Sliding({0}, 10, 10, 100000);
  q.loop = loop;
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  for (Timestamp d = 1; d <= 5000; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
    runner.Poll([&](const WindowResult&) { ++fired; });
  }
  EXPECT_GT(fired, 4000u);
  // Only about one window's worth of history is retained.
  EXPECT_LE(runner.buffered_tuples(), 32u);
}

TEST(OnlineWindowTest, LandmarkHistoryIsKept) {
  WindowedQuery q;
  q.loop = ForLoopSpec::Landmark(0, 1, 1, 100000);
  OnlineWindowRunner runner(q);
  for (Timestamp d = 1; d <= 1000; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
  }
  runner.Poll([](const WindowResult&) {});
  EXPECT_EQ(runner.buffered_tuples(), 1000u);  // left end is fixed: keep all
}

// --- Watermarks & time transforms ----------------------------------------------

TEST(WatermarkTest, TracksPerSourceAndJoint) {
  WatermarkTracker wm;
  EXPECT_EQ(wm.WatermarkOf(0), kMinTimestamp);
  wm.Update(0, 10);
  wm.Update(1, 5);
  wm.Update(0, 7);  // regression ignored
  EXPECT_EQ(wm.WatermarkOf(0), 10);
  EXPECT_EQ(wm.MinWatermark(SourceBit(0) | SourceBit(1)), 5);
  EXPECT_EQ(wm.MinWatermark(SourceBit(2)), kMinTimestamp);
  EXPECT_EQ(wm.GlobalWatermark(), 5);
}

TEST(WatermarkTest, EmptySourceSetIsVacuouslyComplete) {
  // Regression: min over an empty source set is the identity of min —
  // kMaxTimestamp — not kMinTimestamp. A participant watching no sources
  // must never hold a joint watermark back.
  WatermarkTracker wm;
  EXPECT_EQ(wm.MinWatermark(0), kMaxTimestamp);
  wm.Update(0, 10);
  EXPECT_EQ(wm.MinWatermark(0), kMaxTimestamp);  // unaffected by updates
}

TEST(WatermarkTest, OrderedOnlyBelowJointWatermark) {
  WatermarkTracker wm;
  wm.Update(0, 10);
  wm.Update(1, 5);
  EXPECT_TRUE(wm.Ordered(0, 3, 1, 4));
  EXPECT_FALSE(wm.Ordered(0, 8, 1, 4));  // 8 > joint watermark 5
}

TEST(TimeTransformTest, RoundTrips) {
  TimeTransform tt;
  tt.Observe(1, 1000);
  tt.Observe(2, 1500);
  tt.Observe(5, 4000);
  EXPECT_EQ(tt.ToPhysical(1), 1000);
  EXPECT_EQ(tt.ToPhysical(3), 1500);  // nearest at-or-before
  EXPECT_EQ(tt.ToPhysical(0), kMinTimestamp);
  EXPECT_EQ(tt.ToLogical(1500), 2);
  EXPECT_EQ(tt.ToLogical(3999), 2);
  EXPECT_EQ(tt.ToLogical(4000), 5);
  EXPECT_EQ(tt.ToLogical(10), kMinTimestamp);
}

// --- Aggregate strategies (§4.1.2) -----------------------------------------------

TEST(WindowAggregateTest, LandmarkMaxIncrementalMatchesRecompute) {
  StreamHistory h = MsftHistory(
      200, [](Timestamp d) { return 50.0 + ((d * 37) % 23) - 11; });
  auto loop = ForLoopSpec::Landmark(0, 1, 1, 200);
  size_t state = 0;
  auto results =
      RunAggregateOverHistory(loop, AggFn::kMax, {0, "closingPrice"}, h,
                              1u << 16, &state);
  ASSERT_EQ(results.size(), 200u);
  // Cross-check a few against brute force.
  for (Timestamp t : {1, 50, 200}) {
    double expect = -1;
    std::vector<Tuple> content;
    h.Range(1, t, &content);
    for (const Tuple& tup : content) {
      expect = std::max(expect, tup.Get("closingPrice").AsDouble());
    }
    EXPECT_DOUBLE_EQ(results[size_t(t) - 1].value.AsDouble(), expect);
  }
  EXPECT_LE(state, sizeof(LandmarkAggregator));  // O(1) state claim
}

TEST(WindowAggregateTest, SlidingMaxMatchesRecomputeAndNeedsWindowState) {
  StreamHistory h = MsftHistory(
      300, [](Timestamp d) { return 50.0 + ((d * 37) % 23) - 11; });
  auto loop = ForLoopSpec::Sliding({0}, 20, 20, 300);
  size_t state = 0;
  auto results = RunAggregateOverHistory(loop, AggFn::kMax,
                                         {0, "closingPrice"}, h, 1u << 16,
                                         &state);
  ASSERT_EQ(results.size(), 281u);
  for (size_t i = 0; i < results.size(); i += 40) {
    Timestamp t = results[i].t;
    double expect = -1;
    std::vector<Tuple> content;
    h.Range(t - 19, t, &content);
    for (const Tuple& tup : content) {
      expect = std::max(expect, tup.Get("closingPrice").AsDouble());
    }
    EXPECT_DOUBLE_EQ(results[i].value.AsDouble(), expect) << "t=" << t;
  }
  EXPECT_GT(state, sizeof(LandmarkAggregator));  // must hold window contents
}

TEST(WindowAggregateTest, HoppingRecomputesCorrectly) {
  StreamHistory h = MsftHistory(100, [](Timestamp d) { return double(d); });
  auto loop = ForLoopSpec::Sliding({0}, 5, 5, 100, 12);  // hop > width
  auto results = RunAggregateOverHistory(loop, AggFn::kSum,
                                         {0, "closingPrice"}, h);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    double expect = 0;
    for (Timestamp d = r.t - 4; d <= r.t; ++d) expect += double(d);
    EXPECT_DOUBLE_EQ(r.value.AsDouble(), expect);
  }
}

TEST(WindowAggregateTest, CountAvgMinOverSliding) {
  StreamHistory h = MsftHistory(50, [](Timestamp d) { return double(d); });
  auto loop = ForLoopSpec::Sliding({0}, 10, 10, 50);
  auto count = RunAggregateOverHistory(loop, AggFn::kCount,
                                       {0, "closingPrice"}, h);
  auto avg =
      RunAggregateOverHistory(loop, AggFn::kAvg, {0, "closingPrice"}, h);
  auto min =
      RunAggregateOverHistory(loop, AggFn::kMin, {0, "closingPrice"}, h);
  EXPECT_EQ(count.back().value.AsInt64(), 10);
  EXPECT_DOUBLE_EQ(avg.back().value.AsDouble(), (41 + 50) / 2.0);
  EXPECT_DOUBLE_EQ(min.back().value.AsDouble(), 41.0);
}

// --- Event time, punctuations & speculation (DESIGN.md §12) -----------------

// Canonical multiset key: retraction tuples compare equal to the data tuple
// they withdraw.
std::string DataKey(const Tuple& t) {
  return t.IsRetraction()
             ? Tuple::Make(t.schema(), t.values(), t.timestamp()).ToString()
             : t.ToString();
}

std::multiset<std::string> Multiset(const std::vector<Tuple>& tuples) {
  std::multiset<std::string> out;
  for (const Tuple& t : tuples) out.insert(DataKey(t));
  return out;
}

// Block-shuffles `tuples` in place: each consecutive block of `block` items
// is Fisher-Yates shuffled, blocks stay in order, so displacement (and thus
// timestamp disorder for unit-spaced streams) is HARD-bounded by block - 1.
void BlockShuffle(std::vector<Tuple>* tuples, size_t block, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < tuples->size(); i += block) {
    size_t end = std::min(i + block, tuples->size());
    std::vector<Tuple> chunk(tuples->begin() + i, tuples->begin() + end);
    rng.Shuffle(&chunk);
    std::copy(chunk.begin(), chunk.end(), tuples->begin() + i);
  }
}

TEST(EventTimeWindowTest, ShuffledArrivalMatchesOfflineReference) {
  // Acceptance pin: an event-time runner fed a bounded-disorder shuffle of
  // the stream produces windows multiset-identical to the offline reference
  // over the in-order history.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 5, 5, 120);
  q.loop.semantics = TimeSemantics::kEvent;

  StreamHistory h;
  std::vector<Tuple> arrivals;
  for (Timestamp d = 1; d <= 120; ++d) {
    Tuple t = Stock(0, d, "MSFT", 100.0 + static_cast<double>(d % 7));
    h.Append(t);
    arrivals.push_back(t);
  }
  WindowedQuery ref_q = q;
  ref_q.loop.semantics = TimeSemantics::kArrival;
  auto reference = RunOverHistory(ref_q, {{0, std::move(h)}});

  const Timestamp kBound = 8;
  BlockShuffle(&arrivals, static_cast<size_t>(kBound), /*seed=*/7);

  OnlineWindowRunner runner(q);
  std::vector<WindowResult> fired;
  auto cb = [&](const WindowResult& r) { fired.push_back(r); };
  Timestamp max_ts = kMinTimestamp;
  size_t n = 0;
  for (const Tuple& t : arrivals) {
    runner.Ingest(0, t);
    max_ts = std::max(max_ts, t.timestamp());
    if (++n % 16 == 0) {
      runner.OnPunctuation(Punctuation{0, max_ts - kBound});
      runner.Poll(cb);
    }
  }
  runner.OnPunctuation(Punctuation{0, kMaxTimestamp});
  runner.Poll(cb);

  // Disorder never exceeded the promised bound, so nothing was late.
  EXPECT_EQ(runner.late_dropped(OnlineWindowRunner::LateDrop::kBeyondBound),
            0u);
  ASSERT_EQ(fired.size(), reference.size());
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].t, reference[i].t);
    EXPECT_EQ(fired[i].kind, WindowResultKind::kFinal);
    EXPECT_EQ(Multiset(fired[i].tuples), Multiset(reference[i].tuples))
        << "window t=" << fired[i].t;
  }
}

TEST(EventTimeWindowTest, SpeculationAccumulatesToReference) {
  // Acceptance pin: with speculation on, summing additions (kSpeculative +
  // kFinal) minus retractions per window converges to the same multiset the
  // offline reference computes.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 5, 5, 120);
  q.loop.semantics = TimeSemantics::kEvent;

  StreamHistory h;
  std::vector<Tuple> arrivals;
  for (Timestamp d = 1; d <= 120; ++d) {
    Tuple t = Stock(0, d, "MSFT", 100.0 + static_cast<double>(d % 5));
    h.Append(t);
    arrivals.push_back(t);
  }
  WindowedQuery ref_q = q;
  ref_q.loop.semantics = TimeSemantics::kArrival;
  auto reference = RunOverHistory(ref_q, {{0, std::move(h)}});

  const Timestamp kBound = 8;
  BlockShuffle(&arrivals, static_cast<size_t>(kBound), /*seed=*/13);

  OnlineWindowRunner::Options sopts;
  sopts.speculate = true;
  OnlineWindowRunner runner(q, sopts);
  // Per-window accumulation: additions count +1, retractions -1.
  std::map<Timestamp, std::map<std::string, int>> acc;
  std::map<Timestamp, uint64_t> last_revision;
  auto cb = [&](const WindowResult& r) {
    // Revisions of one window arrive in monotone order.
    EXPECT_GT(r.revision, last_revision[r.t]);
    last_revision[r.t] = r.revision;
    int delta = r.kind == WindowResultKind::kRetraction ? -1 : 1;
    for (const Tuple& t : r.tuples) acc[r.t][DataKey(t)] += delta;
  };
  Timestamp max_ts = kMinTimestamp;
  size_t n = 0;
  for (const Tuple& t : arrivals) {
    runner.Ingest(0, t);
    max_ts = std::max(max_ts, t.timestamp());
    if (++n % 16 == 0) {
      runner.OnPunctuation(Punctuation{0, max_ts - kBound});
    }
    runner.Poll(cb);  // every poll may revise the head window
  }
  runner.OnPunctuation(Punctuation{0, kMaxTimestamp});
  runner.Poll(cb);

  // Speculation actually ran (early results before the windows sealed).
  EXPECT_GT(runner.speculative_emitted(), 0u);
  for (const WindowResult& ref : reference) {
    std::map<std::string, int> want;
    for (const Tuple& t : ref.tuples) ++want[DataKey(t)];
    std::erase_if(acc[ref.t], [](const auto& kv) { return kv.second == 0; });
    EXPECT_EQ(acc[ref.t], want) << "window t=" << ref.t;
  }
}

TEST(EventTimeWindowTest, BeyondBoundLateTuplesAreDroppedAndCounted) {
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 5, 5, 100);
  q.loop.semantics = TimeSemantics::kEvent;
  OnlineWindowRunner runner(q);
  runner.Ingest(0, Stock(0, 12, "MSFT", 50.0));
  runner.OnPunctuation(Punctuation{0, 10});
  // ts 9 < watermark 10: the punctuation promised this cannot happen, so the
  // tuple is counted and dropped, never buffered.
  runner.Ingest(0, Stock(0, 9, "MSFT", 50.0));
  EXPECT_EQ(runner.late_dropped(OnlineWindowRunner::LateDrop::kBeyondBound),
            1u);
  EXPECT_EQ(runner.buffered_tuples(), 1u);
  // ts 10 == watermark is NOT late (the promise is about ts < W).
  runner.Ingest(0, Stock(0, 10, "MSFT", 50.0));
  EXPECT_EQ(runner.late_dropped(OnlineWindowRunner::LateDrop::kBeyondBound),
            1u);
  EXPECT_EQ(runner.buffered_tuples(), 2u);
}

TEST(EventTimeWindowTest, BehindLoopLateTuplesAreCounted) {
  // Hopping loop: windows [1,2], [5,6], ... — data in the gap is in time
  // but unreadable by any remaining window once the loop hops past it.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 2, 2, 100, 4);
  q.loop.semantics = TimeSemantics::kEvent;
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  runner.Ingest(0, Stock(0, 1, "MSFT", 50.0));
  runner.Ingest(0, Stock(0, 2, "MSFT", 50.0));
  runner.OnPunctuation(Punctuation{0, 3});
  runner.Poll([&](const WindowResult&) { ++fired; });
  EXPECT_EQ(fired, 1u);  // [1,2] sealed; pending is [5,6], prune floor 5
  runner.Ingest(0, Stock(0, 3, "MSFT", 50.0));  // in time (ts >= watermark)
  EXPECT_EQ(runner.late_dropped(OnlineWindowRunner::LateDrop::kBehindLoop),
            1u);
  EXPECT_EQ(runner.late_dropped(OnlineWindowRunner::LateDrop::kBeyondBound),
            0u);
}

TEST(EventTimeWindowTest, EventModeFiresStrictlyPastRightEdge) {
  // Arrival mode fires [l, r] at W == r; event mode must wait for W > r
  // because ts == r tuples may still arrive while W == r.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 3, 3, 9);
  q.loop.semantics = TimeSemantics::kEvent;
  OnlineWindowRunner runner(q);
  size_t fired = 0;
  auto cb = [&](const WindowResult&) { ++fired; };
  runner.Ingest(0, Stock(0, 1, "MSFT", 50.0));
  runner.Ingest(0, Stock(0, 2, "MSFT", 50.0));
  runner.OnPunctuation(Punctuation{0, 3});
  runner.Poll(cb);
  EXPECT_EQ(fired, 0u);  // W == r == 3: a ts=3 tuple may still arrive
  runner.Ingest(0, Stock(0, 3, "MSFT", 50.0));
  runner.OnPunctuation(Punctuation{0, 4});
  runner.Poll(cb);
  EXPECT_EQ(fired, 1u);  // W == 4 > 3: sealed, with the ts=3 straggler in
}

TEST(EventTimeWindowTest, JoinTimestampIsMaxOfPartsAndWithinWatermark) {
  // Regression pin: a joined result's event time is the max of its
  // constituents' event times, and never exceeds the emitting query's joint
  // watermark at firing time.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0, 1}, 3, 3, 9);
  q.loop.semantics = TimeSemantics::kEvent;
  q.predicates = {
      MakeCompareAttrs({1, "timestamp"}, CmpOp::kEq, {0, "timestamp"})};
  OnlineWindowRunner runner(q);
  std::vector<WindowResult> fired;
  std::vector<Timestamp> joint_at_fire;
  auto cb = [&](const WindowResult& r) {
    fired.push_back(r);
    joint_at_fire.push_back(runner.watermarks().MinWatermark(q.Sources()));
  };
  for (Timestamp d = 1; d <= 9; ++d) {
    runner.Ingest(0, Stock(0, d, "MSFT", 50.0));
    runner.Ingest(1, Stock(1, d, "MSFT", 60.0));
  }
  runner.OnPunctuation(Punctuation{0, 8});
  runner.OnPunctuation(Punctuation{1, 6});
  runner.Poll(cb);
  ASSERT_FALSE(fired.empty());
  for (size_t i = 0; i < fired.size(); ++i) {
    for (const Tuple& t : fired[i].tuples) {
      // Field 0 is stream 0's timestamp column, field 3 stream 1's.
      Timestamp left = t.values()[0].AsTimestamp();
      Timestamp right = t.values()[3].AsTimestamp();
      EXPECT_EQ(t.timestamp(), std::max(left, right));
      EXPECT_LE(t.timestamp(), joint_at_fire[i]);
    }
  }
  // The slower stream (watermark 6) gates firing: windows ending at 6 and
  // beyond stay open.
  for (const WindowResult& r : fired) EXPECT_LT(r.t, 6);
}

TEST(WatermarkTest, PunctuationDuplicatesAndRegressionsAreRejected) {
  WatermarkTracker wm;
  EXPECT_EQ(wm.OnPunctuation(Punctuation{0, 10}),
            WatermarkTracker::PunctResult::kAdvanced);
  // Shard broadcast delivers the same punctuation once per replica:
  // duplicates are idempotent no-ops.
  EXPECT_EQ(wm.OnPunctuation(Punctuation{0, 10}),
            WatermarkTracker::PunctResult::kDuplicate);
  // A regression would retract the promise already given downstream.
  EXPECT_EQ(wm.OnPunctuation(Punctuation{0, 7}),
            WatermarkTracker::PunctResult::kRegressed);
  EXPECT_EQ(wm.WatermarkOf(0), 10);
  EXPECT_EQ(wm.punctuations_applied(), 1u);
  EXPECT_EQ(wm.punctuations_regressed(), 1u);
  // Ordered() works off punctuation-driven watermarks exactly as off
  // data-driven ones.
  EXPECT_EQ(wm.OnPunctuation(Punctuation{1, 5}),
            WatermarkTracker::PunctResult::kAdvanced);
  EXPECT_TRUE(wm.Ordered(0, 3, 1, 4));
  EXPECT_FALSE(wm.Ordered(0, 8, 1, 4));
}

TEST(ShardMergedWatermarkTest, AdvancesOnlyWhenEveryShardReports) {
  ShardMergedWatermark merged;
  merged.Reset(3);
  // A broadcast punctuation lands on shards one by one; the merge is held
  // back by the unseen replicas until the last one reports.
  EXPECT_FALSE(merged.Observe(0, Punctuation{0, 10}).has_value());
  EXPECT_FALSE(merged.Observe(1, Punctuation{0, 10}).has_value());
  auto adv = merged.Observe(2, Punctuation{0, 10});
  ASSERT_TRUE(adv.has_value());
  EXPECT_EQ(*adv, 10);
  EXPECT_EQ(merged.MergedOf(0), 10);
  // Duplicate delivery (re-broadcast after a retry) is a no-op.
  EXPECT_FALSE(merged.Observe(1, Punctuation{0, 10}).has_value());
  // A regressed report cannot pull the merge back.
  EXPECT_FALSE(merged.Observe(0, Punctuation{0, 4}).has_value());
  EXPECT_EQ(merged.MergedOf(0), 10);
}

TEST(ShardMergedWatermarkTest, MergeIsMinAcrossUnevenShards) {
  ShardMergedWatermark merged;
  merged.Reset(2);
  EXPECT_FALSE(merged.Observe(0, Punctuation{0, 30}).has_value());
  auto adv = merged.Observe(1, Punctuation{0, 25});
  ASSERT_TRUE(adv.has_value());
  EXPECT_EQ(*adv, 25);  // min over {30, 25}
  // The slow shard catching up advances the merge to the new min.
  adv = merged.Observe(1, Punctuation{0, 30});
  ASSERT_TRUE(adv.has_value());
  EXPECT_EQ(*adv, 30);
  // Reset (repartition) is conservative: merged state restarts from scratch.
  merged.Reset(2);
  EXPECT_EQ(merged.MergedOf(0), kMinTimestamp);
}

}  // namespace

// White-box peer for the delta contract (see the friend declaration).
struct WindowRunnerTestPeer {
  static void EmitDelta(OnlineWindowRunner* r,
                        const OnlineWindowRunner::Callback& cb,
                        const std::vector<Tuple>& now, WindowResultKind kind) {
    r->EmitDelta(cb, now, kind);
  }
};

namespace {

TEST(WindowDeltaTest, ShrinkingContentEmitsTaggedRetractions) {
  // SPJ window content only grows, so the retraction branch is pinned here
  // directly: emit {A, A, B} speculatively, then seal with {A} — the delta
  // must retract one A and one B, tagged and revision-ordered.
  WindowedQuery q;
  q.loop = ForLoopSpec::Sliding({0}, 3, 3, 9);
  q.loop.semantics = TimeSemantics::kEvent;
  OnlineWindowRunner::Options sopts;
  sopts.speculate = true;
  OnlineWindowRunner runner(q, sopts);
  Tuple a = Stock(0, 1, "A", 1.0);
  Tuple b = Stock(0, 2, "B", 2.0);
  std::vector<WindowResult> out;
  auto cb = [&](const WindowResult& r) { out.push_back(r); };

  WindowRunnerTestPeer::EmitDelta(&runner, cb, {a, a, b},
                                  WindowResultKind::kSpeculative);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, WindowResultKind::kSpeculative);
  EXPECT_EQ(out[0].tuples.size(), 3u);

  WindowRunnerTestPeer::EmitDelta(&runner, cb, {a}, WindowResultKind::kFinal);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].kind, WindowResultKind::kRetraction);
  ASSERT_EQ(out[1].tuples.size(), 2u);
  for (const Tuple& t : out[1].tuples) {
    EXPECT_TRUE(t.IsRetraction());
  }
  EXPECT_EQ(Multiset(out[1].tuples),
            (std::multiset<std::string>{DataKey(a), DataKey(b)}));
  // The seal is a kFinal delta adding nothing new (content {A} was already
  // emitted), and revisions stay monotone across the three results.
  EXPECT_EQ(out[2].kind, WindowResultKind::kFinal);
  EXPECT_TRUE(out[2].tuples.empty());
  EXPECT_LT(out[0].revision, out[1].revision);
  EXPECT_LT(out[1].revision, out[2].revision);
  EXPECT_EQ(runner.retractions_emitted(), 2u);
  // Accumulation check: emitted - retracted == {A}.
  std::map<std::string, int> acc;
  for (const WindowResult& r : out) {
    int delta = r.kind == WindowResultKind::kRetraction ? -1 : 1;
    for (const Tuple& t : r.tuples) acc[DataKey(t)] += delta;
  }
  std::erase_if(acc, [](const auto& kv) { return kv.second == 0; });
  EXPECT_EQ(acc, (std::map<std::string, int>{{DataKey(a), 1}}));
}

TEST(TupleKindTest, PunctuationAndRetractionRoundTrip) {
  Tuple p = Tuple::MakePunctuation(3, 42);
  EXPECT_TRUE(p.IsPunctuation());
  EXPECT_FALSE(p.IsData());
  Punctuation decoded = p.AsPunctuation();
  EXPECT_EQ(decoded.source, 3u);
  EXPECT_EQ(decoded.low_watermark, 42);
  EXPECT_EQ(p.timestamp(), 42);

  Tuple d = Stock(0, 7, "MSFT", 50.0);
  Tuple r = Tuple::Retraction(d);
  EXPECT_TRUE(r.IsRetraction());
  EXPECT_FALSE(r.IsData());
  EXPECT_EQ(r.timestamp(), d.timestamp());
  EXPECT_EQ(r.values(), d.values());
  EXPECT_NE(r.ToString(), d.ToString());  // visibly tagged
}

}  // namespace
}  // namespace tcq
